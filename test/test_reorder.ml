(* Dynamic variable reordering: the order layer, the adjacent-level swap
   rewrite, sifting, the engine policy and checkpoint persistence.

   The central invariant everywhere: reordering changes the *levels* the
   qubits live on, never the qubit-space amplitudes — [Vdd.to_array
   ~order] must return the same array before and after any sequence of
   swaps. *)

open Dd_complex
open Util

let reversed n =
  Dd.Order.of_qubit_of_level (Array.init n (fun l -> n - 1 - l))

let qubit_amplitudes ctx edge ~n =
  Dd.Vdd.to_array ~order:(Dd.Context.order ctx) edge ~n

(* a state whose identity-order DD is wide: qubit i is entangled with
   qubit i+k, so all k pairs straddle the middle of the level stack *)
let straddling_pairs_circuit k =
  let n = 2 * k in
  let gates =
    List.concat_map (fun i -> [ Gate.h i; Gate.cx i (i + k) ]) (List.init k Fun.id)
  in
  Circuit.of_gates ~qubits:n gates

(* -- Order ------------------------------------------------------------- *)

let test_order_identity () =
  check_bool "sentinel is identity" true (Dd.Order.is_identity Dd.Order.identity);
  check_int "identity maps any qubit to itself" 7
    (Dd.Order.level_of_qubit Dd.Order.identity 7);
  check_int "identity maps any level to itself" 3
    (Dd.Order.qubit_of_level Dd.Order.identity 3);
  (* a literal identity permutation collapses to the sentinel *)
  let literal = Dd.Order.of_qubit_of_level [| 0; 1; 2 |] in
  check_bool "literal identity normalises to the sentinel" true
    (Dd.Order.is_identity literal)

let test_order_roundtrip () =
  let order = Dd.Order.of_string "2,0,1,3" in
  check_int "level 0 hosts qubit 2" 2 (Dd.Order.qubit_of_level order 0);
  check_int "qubit 2 lives at level 0" 0 (Dd.Order.level_of_qubit order 2);
  check_bool "string roundtrip" true
    (Dd.Order.equal ~n:4 order (Dd.Order.of_string (Dd.Order.to_string order)));
  check_bool "identity spelling" true
    (Dd.Order.is_identity (Dd.Order.of_string "identity"));
  check_bool "self-consistent" true (Dd.Order.is_valid order)

let test_order_rejects_non_permutation () =
  Alcotest.check_raises "duplicate image"
    (Invalid_argument "Order.of_qubit_of_level: not a permutation")
    (fun () -> ignore (Dd.Order.of_qubit_of_level [| 0; 0; 1 |]))

let test_order_swap_levels () =
  let order = Dd.Order.swap_levels Dd.Order.identity ~n:4 1 in
  check_int "level 1 now hosts qubit 2" 2 (Dd.Order.qubit_of_level order 1);
  check_int "level 2 now hosts qubit 1" 1 (Dd.Order.qubit_of_level order 2);
  check_bool "still a valid permutation" true (Dd.Order.is_valid order);
  let back = Dd.Order.swap_levels order ~n:4 1 in
  check_bool "double swap is identity" true (Dd.Order.is_identity back)

(* -- adjacent swap ------------------------------------------------------ *)

let test_swap_preserves_amplitudes () =
  let ctx = fresh_ctx () in
  let circuit = Standard.random_circuit ~seed:3 ~qubits:5 ~gates:30 () in
  let engine = Dd_sim.Engine.create ~context:ctx 5 in
  Dd_sim.Engine.run engine circuit;
  let edge = Dd_sim.Engine.state engine in
  let before = qubit_amplitudes ctx edge ~n:5 in
  let edge = ref edge in
  for level = 0 to 3 do
    edge := Dd.Reorder.swap ctx !edge ~level;
    check_cnum_array
      (Printf.sprintf "amplitudes unchanged after swapping level %d" level)
      before
      (qubit_amplitudes ctx !edge ~n:5)
  done

let test_swap_is_involutive_and_canonical () =
  let ctx = fresh_ctx () in
  let circuit = Standard.random_circuit ~seed:17 ~qubits:4 ~gates:25 () in
  let engine = Dd_sim.Engine.create ~context:ctx 4 in
  Dd_sim.Engine.run engine circuit;
  let original = Dd_sim.Engine.state engine in
  let swapped = Dd.Reorder.swap ctx original ~level:1 in
  (* canonicity of every node the swap rebuilt *)
  Alcotest.(check (list string))
    "swapped DD passes the auditor" []
    (List.map Dd.Audit.to_string (Dd.Audit.check_vector ctx swapped));
  let back = Dd.Reorder.swap ctx swapped ~level:1 in
  check_bool "swap . swap = id on the DD (hash-consed equality)" true
    (Dd.Vdd.equal original back);
  check_bool "swap . swap = id on the order" true
    (Dd.Order.is_identity (Dd.Context.order ctx))

let test_swap_out_of_range () =
  let ctx = fresh_ctx () in
  let e = Dd.Vdd.basis ctx ~n:3 0 in
  Alcotest.check_raises "top level has no upper neighbour"
    (Invalid_argument "Reorder.swap_vector: level out of range")
    (fun () -> ignore (Dd.Reorder.swap_vector ctx e ~level:2))

let test_swap_matrix_matches_dense () =
  let ctx = fresh_ctx () in
  let engine = Dd_sim.Engine.create ~context:ctx 3 in
  let product =
    Dd_sim.Engine.combine engine
      (Circuit.flatten (Standard.random_circuit ~seed:6 ~qubits:3 ~gates:12 ()))
  in
  let dense_before = Dd.Mdd.to_dense product ~n:3 in
  let swapped = Dd.Reorder.swap_matrix ctx product ~level:1 in
  let order = Dd.Order.swap_levels Dd.Order.identity ~n:3 1 in
  let dense_after = Dd.Mdd.to_dense ~order swapped ~n:3 in
  Array.iteri
    (fun r row ->
      Array.iteri
        (fun c v ->
          check_cnum (Printf.sprintf "entry %d %d" r c) v dense_after.(r).(c))
        row)
    dense_before

(* -- explicit order / sifting ------------------------------------------ *)

let test_apply_order_reversed () =
  let ctx = fresh_ctx () in
  let circuit = Standard.random_circuit ~seed:29 ~qubits:5 ~gates:30 () in
  let engine = Dd_sim.Engine.create ~context:ctx 5 in
  Dd_sim.Engine.run engine circuit;
  let edge = Dd_sim.Engine.state engine in
  let before = qubit_amplitudes ctx edge ~n:5 in
  let edge, swaps = Dd.Reorder.apply_order ctx edge (reversed 5) in
  check_bool "reversal needs swaps" true (swaps > 0);
  check_bool "context order is the requested one" true
    (Dd.Order.equal ~n:5 (Dd.Context.order ctx) (reversed 5));
  check_cnum_array "amplitudes unchanged under the reversed order" before
    (qubit_amplitudes ctx edge ~n:5)

let test_sift_shrinks_straddling_pairs () =
  let k = 4 in
  let n = 2 * k in
  let ctx = fresh_ctx () in
  let engine = Dd_sim.Engine.create ~context:ctx n in
  Dd_sim.Engine.run engine (straddling_pairs_circuit k);
  let edge = Dd_sim.Engine.state engine in
  let before = qubit_amplitudes ctx edge ~n in
  let nodes_before = Dd.Vdd.node_count edge in
  let edge, stats = Dd.Reorder.sift ctx edge in
  check_int "stats record the entry size" nodes_before
    stats.Dd.Reorder.nodes_before;
  check_int "stats record the exit size" (Dd.Vdd.node_count edge)
    stats.Dd.Reorder.nodes_after;
  check_bool
    (Printf.sprintf "sifting shrinks the DD (%d -> %d)" nodes_before
       stats.Dd.Reorder.nodes_after)
    true
    (stats.Dd.Reorder.nodes_after < nodes_before);
  check_bool "order is a valid permutation" true
    (Dd.Order.is_identity (Dd.Context.order ctx)
    || Dd.Order.is_valid (Dd.Context.order ctx));
  Alcotest.(check (list string))
    "order audit is clean" []
    (List.map Dd.Audit.to_string (Dd.Audit.check_order ctx));
  check_cnum_array "amplitudes survive sifting" before
    (qubit_amplitudes ctx edge ~n)

let test_bulge_detection () =
  Alcotest.(check (option int))
    "uniform profile has no bulge" None
    (Obs.Dd_profile.bulge [| 20; 21; 20; 22; 20 |]);
  Alcotest.(check (option int))
    "one heavy level is the bulge" (Some 2)
    (Obs.Dd_profile.bulge [| 4; 5; 120; 5; 4 |]);
  Alcotest.(check (option int))
    "worst of two bulges wins" (Some 3)
    (Obs.Dd_profile.bulge [| 4; 100; 4; 180; 4 |]);
  Alcotest.(check (option int))
    "min_nodes keeps small DDs quiet" None
    (Obs.Dd_profile.bulge [| 1; 1; 12; 1; 1 |]);
  Alcotest.(check (option int))
    "empty profile" None (Obs.Dd_profile.bulge [||])

(* -- engine policy ------------------------------------------------------ *)

let test_engine_explicit_order_matches_dense () =
  let circuit = Standard.random_circuit ~seed:41 ~qubits:5 ~gates:40 () in
  let engine = Dd_sim.Engine.create 5 in
  ignore (Dd_sim.Engine.set_order engine (reversed 5));
  Dd_sim.Engine.run engine circuit;
  let ctx = Dd_sim.Engine.context engine in
  check_bool "order still reversed after the run" true
    (Dd.Order.equal ~n:5 (Dd.Context.order ctx) (reversed 5));
  check_cnum_array "reversed-order run matches the dense simulator"
    (dense_state_of_circuit circuit)
    (qubit_amplitudes ctx (Dd_sim.Engine.state engine) ~n:5);
  let stats = Dd_sim.Engine.stats engine in
  check_int "explicit order counted as one reorder" 1
    stats.Dd_sim.Sim_stats.reorders_run

let test_engine_adaptive_matches_dense () =
  let k = 3 in
  let n = 2 * k in
  let circuit = straddling_pairs_circuit k in
  let engine = Dd_sim.Engine.create n in
  Dd_sim.Engine.set_reorder engine ~bulge_factor:1.5 ~every:1
    Dd_sim.Engine.Reorder_adaptive;
  Dd_sim.Engine.run engine circuit;
  let ctx = Dd_sim.Engine.context engine in
  check_cnum_array "adaptive reordering never changes the semantics"
    (dense_state_of_circuit circuit)
    (qubit_amplitudes ctx (Dd_sim.Engine.state engine) ~n)

let test_engine_adaptive_with_audit_never_aborts () =
  (* the acceptance scenario: adaptive reordering under a tight audit
     cadence — every swap's canonicity is re-derived by the auditor *)
  let circuit = Standard.random_circuit ~seed:97 ~qubits:6 ~gates:120 () in
  let engine = Dd_sim.Engine.create 6 in
  Dd_sim.Engine.set_reorder engine ~bulge_factor:1.2 ~every:4
    Dd_sim.Engine.Reorder_adaptive;
  Dd_sim.Engine.set_audit engine 16;
  Dd_sim.Engine.run engine circuit;
  let stats = Dd_sim.Engine.stats engine in
  check_bool "auditor actually ran" true
    (stats.Dd_sim.Sim_stats.audits_run > 0);
  check_int "no violations under reordering" 0
    stats.Dd_sim.Sim_stats.audit_violations;
  check_cnum_array "audited adaptive run matches the dense simulator"
    (dense_state_of_circuit circuit)
    (qubit_amplitudes (Dd_sim.Engine.context engine)
       (Dd_sim.Engine.state engine) ~n:6)

let test_engine_measure_under_reordered_state () =
  let engine = Dd_sim.Engine.create 5 in
  Dd_sim.Engine.run engine (Standard.ghz 5);
  ignore (Dd_sim.Engine.set_order engine (reversed 5));
  let outcome = Dd_sim.Engine.measure_all engine in
  check_bool "GHZ collapses to all-zeros or all-ones" true
    (outcome = 0 || outcome = 31)

(* -- checkpoint v6 ------------------------------------------------------ *)

let test_checkpoint_roundtrips_order () =
  let circuit = Standard.random_circuit ~seed:53 ~qubits:5 ~gates:40 () in
  let flat = Circuit.flatten circuit in
  let cut = List.length flat / 2 in
  let prefix =
    Circuit.of_gates ~qubits:5 (List.filteri (fun i _ -> i < cut) flat)
  in
  let strategy = Dd_sim.Strategy.Sequential in
  let interrupted = Dd_sim.Engine.create ~seed:42 5 in
  ignore (Dd_sim.Engine.set_order interrupted (reversed 5));
  Dd_sim.Engine.run ~strategy interrupted prefix;
  let path = Filename.temp_file "ddsim" ".ckpt" in
  Dd_sim.Checkpoint.save interrupted ~strategy ~gate_index:cut ~path;
  let resumed = Dd_sim.Engine.create ~seed:7 5 in
  let checkpoint =
    Dd_sim.Checkpoint.load (Dd_sim.Engine.context resumed) ~path
  in
  Sys.remove path;
  check_bool "checkpoint carries the live order" true
    (Dd.Order.equal ~n:5 checkpoint.Dd_sim.Checkpoint.order (reversed 5));
  let start_gate = Dd_sim.Checkpoint.restore resumed checkpoint in
  check_bool "restore installs the order" true
    (Dd.Order.equal ~n:5
       (Dd.Context.order (Dd_sim.Engine.context resumed))
       (reversed 5));
  check_int "reorder counter survives the roundtrip" 1
    checkpoint.Dd_sim.Checkpoint.stats.Dd_sim.Sim_stats.reorders_run;
  Dd_sim.Engine.run ~strategy ~start_gate resumed circuit;
  check_cnum_array "resumed reordered run matches the dense simulator"
    (dense_state_of_circuit circuit)
    (qubit_amplitudes (Dd_sim.Engine.context resumed)
       (Dd_sim.Engine.state resumed) ~n:5)

let test_load_latest_reports_both_failures () =
  let path = Filename.temp_file "ddsim" ".ckpt" in
  Obs.Safe_io.write_file path "not a checkpoint\n";
  Obs.Safe_io.write_file (path ^ ".prev") "also garbage\n";
  let ctx = fresh_ctx () in
  (match Dd_sim.Checkpoint.load_latest ctx ~path with
  | _ -> Alcotest.fail "expected both generations to be rejected"
  | exception
      Dd_sim.Error.Error
        (Dd_sim.Error.Invalid_checkpoint { source; message }) ->
    check_bool "error names the file the user asked for" true
      (source = path);
    let mentions needle =
      let n = String.length message and m = String.length needle in
      let rec loop i =
        i + m <= n && (String.sub message i m = needle || loop (i + 1))
      in
      loop 0
    in
    check_bool "error mentions the fallback generation" true
      (mentions ".prev");
    check_bool "error carries a located reason for each generation" true
      (mentions "no loadable generation"));
  Sys.remove path;
  Sys.remove (path ^ ".prev")

(* -- property: any fixed order is semantically invisible ---------------- *)

let random_order_arb n =
  QCheck.make
    ~print:(fun seed -> Printf.sprintf "order seed %d" seed)
    QCheck.Gen.(0 -- 10000)
  |> QCheck.map_keep_input (fun seed ->
         let rng = Random.State.make [| seed |] in
         let image = Array.init n Fun.id in
         for i = n - 1 downto 1 do
           let j = Random.State.int rng (i + 1) in
           let t = image.(i) in
           image.(i) <- image.(j);
           image.(j) <- t
         done;
         Dd.Order.of_qubit_of_level image)

let prop_fixed_order_equals_identity =
  QCheck.Test.make
    ~name:"simulating under a random fixed order = identity amplitudes"
    ~count:40
    (QCheck.pair (random_order_arb 4)
       (QCheck.make
          ~print:(fun seed -> Printf.sprintf "circuit seed %d" seed)
          QCheck.Gen.(0 -- 10000)))
    (fun ((_, order), circuit_seed) ->
      let circuit =
        Standard.random_circuit ~seed:circuit_seed ~qubits:4 ~gates:25 ()
      in
      let identity_engine = Dd_sim.Engine.create 4 in
      Dd_sim.Engine.run identity_engine circuit;
      let reference =
        Dd.Vdd.to_array (Dd_sim.Engine.state identity_engine) ~n:4
      in
      let engine = Dd_sim.Engine.create 4 in
      ignore (Dd_sim.Engine.set_order engine order);
      Dd_sim.Engine.run engine circuit;
      let actual =
        qubit_amplitudes (Dd_sim.Engine.context engine)
          (Dd_sim.Engine.state engine) ~n:4
      in
      Array.for_all2
        (fun a b -> Cnum.approx_equal ~tol:1e-8 a b)
        reference actual)

let suite =
  [
    Alcotest.test_case "order: identity sentinel" `Quick test_order_identity;
    Alcotest.test_case "order: string roundtrip" `Quick test_order_roundtrip;
    Alcotest.test_case "order: rejects non-permutations" `Quick
      test_order_rejects_non_permutation;
    Alcotest.test_case "order: swap_levels" `Quick test_order_swap_levels;
    Alcotest.test_case "swap preserves amplitudes" `Quick
      test_swap_preserves_amplitudes;
    Alcotest.test_case "swap is involutive and canonical" `Quick
      test_swap_is_involutive_and_canonical;
    Alcotest.test_case "swap rejects the top level" `Quick
      test_swap_out_of_range;
    Alcotest.test_case "matrix swap matches dense" `Quick
      test_swap_matrix_matches_dense;
    Alcotest.test_case "apply_order: reversal" `Quick
      test_apply_order_reversed;
    Alcotest.test_case "sifting shrinks straddling pairs" `Quick
      test_sift_shrinks_straddling_pairs;
    Alcotest.test_case "bulge detection" `Quick test_bulge_detection;
    Alcotest.test_case "engine: explicit order matches dense" `Quick
      test_engine_explicit_order_matches_dense;
    Alcotest.test_case "engine: adaptive matches dense" `Quick
      test_engine_adaptive_matches_dense;
    Alcotest.test_case "engine: adaptive + audit never aborts" `Quick
      test_engine_adaptive_with_audit_never_aborts;
    Alcotest.test_case "engine: measurement under a reordered state" `Quick
      test_engine_measure_under_reordered_state;
    Alcotest.test_case "checkpoint v6 roundtrips the order" `Quick
      test_checkpoint_roundtrips_order;
    Alcotest.test_case "load_latest reports both failed generations" `Quick
      test_load_latest_reports_both_failures;
    QCheck_alcotest.to_alcotest prop_fixed_order_equals_identity;
  ]
