open Util

let contains_sub text sub =
  let n = String.length text and m = String.length sub in
  let rec loop i = i + m <= n && (String.sub text i m = sub || loop (i + 1)) in
  loop 0

let test_vector_dot_structure () =
  let ctx = fresh_ctx () in
  let e = Dd.Vdd.basis ctx ~n:3 5 in
  let dot = Dd.Dot.vector_to_dot e in
  check_bool "digraph header" true (contains_sub dot "digraph vector_dd");
  check_bool "terminal node" true (contains_sub dot "terminal");
  check_bool "level labels" true (contains_sub dot "label=\"q2\"");
  check_bool "root edge" true (contains_sub dot "root ->")

let test_vector_dot_zero_stubs () =
  let ctx = fresh_ctx () in
  let e = Dd.Vdd.basis ctx ~n:2 2 in
  let dot = Dd.Dot.vector_to_dot e in
  (* a basis state has one zero stub per level *)
  check_bool "zero stubs drawn as points" true
    (contains_sub dot "zero1 [shape=point]")

let test_vector_dot_weights () =
  let ctx = fresh_ctx () in
  let e =
    Dd.Vdd.of_array ctx
      [| Dd_complex.Cnum.of_float 0.8; Dd_complex.Cnum.of_float 0.6 |]
  in
  let dot = Dd.Dot.vector_to_dot e in
  check_bool "non-unit weight labelled" true (contains_sub dot "0.75");
  check_bool "weight-one edges unlabelled" false
    (contains_sub dot "label=\"1+0i\"")

let test_matrix_dot_structure () =
  let ctx = fresh_ctx () in
  let dd = Dd.Mdd.gate ctx ~n:2 ~target:0 (Gate.matrix Gate.H) in
  let dot = Dd.Dot.matrix_to_dot ~name:"hgate" dd in
  check_bool "custom name" true (contains_sub dot "digraph hgate");
  check_bool "quadrant labels" true (contains_sub dot "label=\"01");
  check_bool "terminal present" true (contains_sub dot "terminal")

let test_dot_parses_as_graphviz_shape () =
  (* cheap structural sanity: balanced braces, one per line block *)
  let ctx = fresh_ctx () in
  let dot = Dd.Dot.vector_to_dot (Dd.Vdd.basis ctx ~n:4 9) in
  let opens =
    String.fold_left (fun acc c -> if c = '{' then acc + 1 else acc) 0 dot
  in
  let closes =
    String.fold_left (fun acc c -> if c = '}' then acc + 1 else acc) 0 dot
  in
  check_int "balanced braces" opens closes;
  check_bool "ends with newline" true (dot.[String.length dot - 1] = '\n')

let test_vector_dot_annotated () =
  let ctx = fresh_ctx () in
  let e =
    Dd.Vdd.of_array ctx
      [| Dd_complex.Cnum.of_float 0.8; Dd_complex.Cnum.of_float 0.6 |]
  in
  let dot = Dd.Dot.vector_to_dot ~annotate:true e in
  (* every non-zero edge gets a magnitude + log2-bucket annotation *)
  check_bool "magnitude label" true (contains_sub dot "|w|=0.75");
  check_bool "log2 bucket label" true (contains_sub dot "(2^0)");
  (* nodes are grouped into rank=same rows with a level label *)
  check_bool "rank row" true (contains_sub dot "{ rank=same; level0;");
  check_bool "level caption names the hosted qubit" true
    (contains_sub dot "label=\"level 0 (qubit 0)\"");
  (* annotation also labels weight-one edges, unlike the plain export *)
  let plain = Dd.Dot.vector_to_dot e in
  check_bool "plain export unchanged: no magnitudes" false
    (contains_sub plain "|w|=");
  check_bool "plain export unchanged: no rank rows" false
    (contains_sub plain "rank=same")

let test_matrix_dot_annotated () =
  let ctx = fresh_ctx () in
  let dd = Dd.Mdd.gate ctx ~n:2 ~target:0 (Gate.matrix Gate.H) in
  let dot = Dd.Dot.matrix_to_dot ~annotate:true dd in
  (* the Hadamard quadrant weights have magnitude 1/sqrt(2) ~ 0.7071 *)
  check_bool "quadrant magnitude label" true (contains_sub dot "|w|=0.7071");
  check_bool "hadamard bucket" true (contains_sub dot "(2^0)");
  check_bool "rank rows per level" true (contains_sub dot "rank=same");
  check_bool "quadrants keep their labels" true (contains_sub dot "label=\"01")

let test_annotated_dot_braces_balanced () =
  let ctx = fresh_ctx () in
  let dot = Dd.Dot.vector_to_dot ~annotate:true (Dd.Vdd.basis ctx ~n:4 9) in
  let count c0 =
    String.fold_left (fun acc c -> if c = c0 then acc + 1 else acc) 0 dot
  in
  check_int "balanced braces" (count '{') (count '}')

let suite =
  [
    Alcotest.test_case "vector_structure" `Quick test_vector_dot_structure;
    Alcotest.test_case "vector_zero_stubs" `Quick test_vector_dot_zero_stubs;
    Alcotest.test_case "vector_weights" `Quick test_vector_dot_weights;
    Alcotest.test_case "matrix_structure" `Quick test_matrix_dot_structure;
    Alcotest.test_case "graphviz_shape" `Quick
      test_dot_parses_as_graphviz_shape;
    Alcotest.test_case "vector_annotated" `Quick test_vector_dot_annotated;
    Alcotest.test_case "matrix_annotated" `Quick test_matrix_dot_annotated;
    Alcotest.test_case "annotated_braces" `Quick
      test_annotated_dot_braces_balanced;
  ]
