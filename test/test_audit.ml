(* The invariant auditor: clean states audit clean, seeded corruptions are
   found and named, the recovery ladder repairs what it claims to, and the
   disabled per-gate probe allocates nothing. *)

open Dd_complex
open Util

let run_engine circuit =
  let engine = Dd_sim.Engine.create Circuit.(circuit.qubits) in
  Dd_sim.Engine.run engine circuit;
  engine

let test_clean_state_audits_clean () =
  let engine =
    run_engine (Standard.random_circuit ~seed:5 ~qubits:5 ~gates:60 ())
  in
  let ctx = Dd_sim.Engine.context engine in
  check_int "no vector violations" 0
    (List.length
       (Dd.Audit.check_vector ctx (Dd_sim.Engine.state engine)));
  check_int "no table violations" 0 (List.length (Dd.Audit.check_tables ctx))

let test_audit_now_clean () =
  let engine =
    run_engine (Standard.random_circuit ~seed:7 ~qubits:4 ~gates:30 ())
  in
  check_int "audit_now finds nothing" 0 (Dd_sim.Engine.audit_now engine);
  let stats = Dd_sim.Engine.stats engine in
  check_int "audit counted" 1 stats.Dd_sim.Sim_stats.audits_run;
  check_int "no violations counted" 0
    stats.Dd_sim.Sim_stats.audit_violations

let test_norm_drift_detected () =
  let engine = run_engine (Standard.bell ()) in
  let ctx = Dd_sim.Engine.context engine in
  (* scale the state by 2: canonical structure intact, norm badly off *)
  Dd_sim.Engine.set_state engine
    (Dd.Vdd.scale ctx (Cnum.of_float 2.) (Dd_sim.Engine.state engine));
  let violations =
    Dd.Audit.check_vector ~norm_tol:1e-6 ctx (Dd_sim.Engine.state engine)
  in
  check_bool "norm drift reported" true
    (List.exists
       (fun v -> Dd.Audit.class_of v = Dd.Audit.Norm)
       violations)

let test_norm_drift_repaired () =
  let engine = run_engine (Standard.bell ()) in
  let ctx = Dd_sim.Engine.context engine in
  let expected = Dd.Vdd.to_array (Dd_sim.Engine.state engine) ~n:2 in
  Dd_sim.Engine.set_state engine
    (Dd.Vdd.scale ctx (Cnum.of_float 2.) (Dd_sim.Engine.state engine));
  let found = Dd_sim.Engine.audit_now engine in
  check_bool "drift found" true (found > 0);
  let stats = Dd_sim.Engine.stats engine in
  check_int "repair counted" 1 stats.Dd_sim.Sim_stats.audit_repairs;
  check_cnum_array "state renormalised back" expected
    (Dd.Vdd.to_array (Dd_sim.Engine.state engine) ~n:2);
  check_int "clean after repair" 0 (Dd_sim.Engine.audit_now engine)

let test_norm2_uncached_matches () =
  let engine =
    run_engine (Standard.random_circuit ~seed:9 ~qubits:5 ~gates:40 ())
  in
  let arr = Dd.Vdd.to_array (Dd_sim.Engine.state engine) ~n:5 in
  let dense = Array.fold_left (fun a z -> a +. Cnum.mag2 z) 0. arr in
  check_float "norm2 agrees with dense sum" dense
    (Dd.Audit.norm2_uncached (Dd_sim.Engine.state engine))

let test_rebuild_preserves_amplitudes () =
  let engine =
    run_engine (Standard.random_circuit ~seed:13 ~qubits:5 ~gates:50 ())
  in
  let ctx = Dd_sim.Engine.context engine in
  let before = Dd.Vdd.to_array (Dd_sim.Engine.state engine) ~n:5 in
  let rebuilt = Dd.Audit.rebuild_vector ctx (Dd_sim.Engine.state engine) in
  check_cnum_array "rebuild is semantics-preserving" before
    (Dd.Vdd.to_array rebuilt ~n:5);
  check_int "rebuilt DD audits clean" 0
    (List.length (Dd.Audit.check_vector ctx rebuilt))

let test_audit_cadence_in_run () =
  let circuit = Standard.random_circuit ~seed:17 ~qubits:4 ~gates:20 () in
  let engine = Dd_sim.Engine.create 4 in
  Dd_sim.Engine.set_audit engine 4;
  Dd_sim.Engine.run engine circuit;
  let stats = Dd_sim.Engine.stats engine in
  check_bool "cadence produced audits" true
    (stats.Dd_sim.Sim_stats.audits_run >= 4);
  check_int "all clean" 0 stats.Dd_sim.Sim_stats.audit_violations

let test_set_audit_rejects_bad_parameters () =
  let engine = Dd_sim.Engine.create 2 in
  let rejects f =
    try
      f ();
      false
    with Dd_sim.Error.Error (Dd_sim.Error.Invalid_parameter _) -> true
  in
  check_bool "negative cadence rejected" true
    (rejects (fun () -> Dd_sim.Engine.set_audit engine (-1)));
  check_bool "zero tolerance rejected" true
    (rejects (fun () -> Dd_sim.Engine.set_audit engine ~tolerance:0. 4));
  check_bool "nan tolerance rejected" true
    (rejects (fun () ->
         Dd_sim.Engine.set_audit engine ~tolerance:Float.nan 4))

(* The claim in engine.mli: with auditing off, the per-gate probe is one
   load and one branch — no allocation.  Warm up, then measure minor-heap
   words across 100k probes. *)
let test_disabled_probe_allocates_nothing () =
  let engine = Dd_sim.Engine.create 3 in
  check_int "audit disabled by default" 0 (Dd_sim.Engine.audit_every engine);
  let probe () =
    for gate = 1 to 100_000 do
      if Dd_sim.Engine.audit_due engine ~gate then assert false
    done
  in
  probe ();
  (* warmed: closures allocated, code paths traced *)
  let before = Gc.minor_words () in
  probe ();
  let allocated = Gc.minor_words () -. before in
  check_bool
    (Printf.sprintf "disabled probe allocated %.0f words" allocated)
    true
    (allocated < 256.)

let suite =
  [
    Alcotest.test_case "clean state audits clean" `Quick
      test_clean_state_audits_clean;
    Alcotest.test_case "audit_now on a clean engine" `Quick
      test_audit_now_clean;
    Alcotest.test_case "norm drift detected" `Quick test_norm_drift_detected;
    Alcotest.test_case "norm drift repaired" `Quick test_norm_drift_repaired;
    Alcotest.test_case "norm2_uncached matches dense" `Quick
      test_norm2_uncached_matches;
    Alcotest.test_case "rebuild preserves amplitudes" `Quick
      test_rebuild_preserves_amplitudes;
    Alcotest.test_case "audit cadence inside run" `Quick
      test_audit_cadence_in_run;
    Alcotest.test_case "set_audit validates parameters" `Quick
      test_set_audit_rejects_bad_parameters;
    Alcotest.test_case "disabled probe is allocation-free" `Quick
      test_disabled_probe_allocates_nothing;
  ]
