open Dd_complex
open Util

let c = Cnum.make
let r = Cnum.of_float

let check_dense_matrix msg expected actual =
  Array.iteri
    (fun row erow ->
      Array.iteri
        (fun col e ->
          check_cnum
            (Printf.sprintf "%s [%d,%d]" msg row col)
            e
            actual.(row).(col))
        erow)
    expected

let test_identity () =
  let ctx = fresh_ctx () in
  let e = Dd.Mdd.identity ctx 3 in
  check_dense_matrix "identity" (dense_id 3) (Dd.Mdd.to_dense e ~n:3)

let test_identity_linear_size () =
  let ctx = fresh_ctx () in
  (* "the identity ... can be represented by a single node for each qubit" *)
  check_int "identity is a chain" 12
    (Dd.Mdd.node_count (Dd.Mdd.identity ctx 12))

let test_single_qubit_gate_each_target () =
  let ctx = fresh_ctx () in
  let n = 3 in
  List.iter
    (fun target ->
      let gate = Gate.h target in
      let dd = Dd.Mdd.gate ctx ~n ~target (Gate.matrix gate.Gate.kind) in
      check_dense_matrix
        (Printf.sprintf "H on qubit %d" target)
        (dense_gate ~n gate) (Dd.Mdd.to_dense dd ~n))
    [ 0; 1; 2 ]

let test_gate_kinds_dense () =
  let ctx = fresh_ctx () in
  let n = 2 in
  List.iter
    (fun kind ->
      let gate = Gate.make kind 1 in
      let dd = Dd.Mdd.gate ctx ~n ~target:1 (Gate.matrix kind) in
      check_dense_matrix (Gate.name gate) (dense_gate ~n gate)
        (Dd.Mdd.to_dense dd ~n))
    [
      Gate.X; Gate.Y; Gate.Z; Gate.S; Gate.Sdg; Gate.T; Gate.Tdg; Gate.Sx;
      Gate.Sxdg; Gate.Sy; Gate.Sydg; Gate.Rx 0.7; Gate.Ry 1.1; Gate.Rz 2.3;
      Gate.Phase 0.9;
    ]

let gate_dd ctx ~n (gate : Gate.t) =
  let controls =
    List.map
      (fun (ctl : Gate.control) ->
        { Dd.Mdd.c_qubit = ctl.qubit; c_positive = ctl.positive })
      gate.controls
  in
  Dd.Mdd.gate ctx ~n ~target:gate.target ~controls (Gate.matrix gate.kind)

let test_cx_both_orientations () =
  let ctx = fresh_ctx () in
  List.iter
    (fun (control, target) ->
      let gate = Gate.cx control target in
      check_dense_matrix
        (Printf.sprintf "cx %d %d" control target)
        (dense_gate ~n:2 gate)
        (Dd.Mdd.to_dense (gate_dd ctx ~n:2 gate) ~n:2))
    [ (0, 1); (1, 0) ]

let test_cx_matches_paper_matrix () =
  (* the CX matrix displayed in Section II-A (control = MSB) *)
  let ctx = fresh_ctx () in
  let dd = gate_dd ctx ~n:2 (Gate.cx 1 0) in
  let expected =
    [|
      [| r 1.; r 0.; r 0.; r 0. |];
      [| r 0.; r 1.; r 0.; r 0. |];
      [| r 0.; r 0.; r 0.; r 1. |];
      [| r 0.; r 0.; r 1.; r 0. |];
    |]
  in
  check_dense_matrix "CX" expected (Dd.Mdd.to_dense dd ~n:2)

let test_negative_control () =
  let ctx = fresh_ctx () in
  let gate = Gate.make ~controls:[ Gate.nctrl 1 ] Gate.X 0 in
  check_dense_matrix "negatively controlled X" (dense_gate ~n:2 gate)
    (Dd.Mdd.to_dense (gate_dd ctx ~n:2 gate) ~n:2)

let test_toffoli () =
  let ctx = fresh_ctx () in
  let gate = Gate.ccx 0 1 2 in
  check_dense_matrix "ccx" (dense_gate ~n:3 gate)
    (Dd.Mdd.to_dense (gate_dd ctx ~n:3 gate) ~n:3)

let test_mcz_mixed_polarity () =
  let ctx = fresh_ctx () in
  let gate =
    Gate.make ~controls:[ Gate.ctrl 3; Gate.nctrl 1 ] Gate.Z 2
  in
  check_dense_matrix "mixed-polarity mcz" (dense_gate ~n:4 gate)
    (Dd.Mdd.to_dense (gate_dd ctx ~n:4 gate) ~n:4)

let test_gate_rejects_bad_input () =
  let ctx = fresh_ctx () in
  Alcotest.check_raises "control = target"
    (Dd.Dd_error.Error
       (Dd.Dd_error.Invalid_operand
          { operation = "Mdd.gate"; message = "control equals target" }))
    (fun () ->
      ignore
        (Dd.Mdd.gate ctx ~n:2 ~target:0
           ~controls:[ { Dd.Mdd.c_qubit = 0; c_positive = true } ]
           (Gate.matrix Gate.X)))

let test_gate_size_linear () =
  let ctx = fresh_ctx () in
  let n = 16 in
  let dd = gate_dd ctx ~n (Gate.cx 3 12) in
  check_bool "elementary gate DDs are linear in n" true
    (Dd.Mdd.node_count dd <= 2 * n)

let test_of_dense_roundtrip () =
  let ctx = fresh_ctx () in
  let m =
    [|
      [| c 0.1 0.; c 0. 0.2; c 0.3 0.; c 0. 0. |];
      [| c 0. 0.; c 0.5 0.5; c 0. 0.; c 1. 0. |];
      [| c 0.7 0.; c 0. 0.; c 0. (-0.1); c 0. 0. |];
      [| c 0. 0.; c 0.2 0.; c 0. 0.; c 0.4 0.4 |];
    |]
  in
  check_dense_matrix "of_dense/to_dense roundtrip" m
    (Dd.Mdd.to_dense (Dd.Mdd.of_dense ctx m) ~n:2)

let test_permutation () =
  let ctx = fresh_ctx () in
  let f x = (x + 3) mod 8 in
  let dd = Dd.Mdd.of_permutation ctx ~n:3 f in
  let expected =
    Array.init 8 (fun row ->
        Array.init 8 (fun col -> if row = f col then Cnum.one else Cnum.zero))
  in
  check_dense_matrix "cyclic shift" expected (Dd.Mdd.to_dense dd ~n:3)

let test_permutation_rejects_non_bijection () =
  let ctx = fresh_ctx () in
  Alcotest.check_raises "constant map rejected"
    (Invalid_argument "Mdd.of_permutation: not a bijection") (fun () ->
      ignore (Dd.Mdd.of_permutation ctx ~n:2 (fun _ -> 0)))

let test_mul_matches_dense () =
  let ctx = fresh_ctx () in
  let a = gate_dd ctx ~n:2 (Gate.h 0) in
  let b = gate_dd ctx ~n:2 (Gate.cx 0 1) in
  let product = Dd.Mdd.mul ctx b a in
  let expected =
    dense_matmul (dense_gate ~n:2 (Gate.cx 0 1)) (dense_gate ~n:2 (Gate.h 0))
  in
  check_dense_matrix "CX x H" expected (Dd.Mdd.to_dense product ~n:2)

let test_mul_with_identity () =
  let ctx = fresh_ctx () in
  let u = gate_dd ctx ~n:3 (Gate.ccx 0 1 2) in
  let id = Dd.Mdd.identity ctx 3 in
  check_bool "I x U = U" true (Dd.Mdd.equal u (Dd.Mdd.mul ctx id u));
  check_bool "U x I = U" true (Dd.Mdd.equal u (Dd.Mdd.mul ctx u id))

let test_unitarity_canonical () =
  (* U+ x U must literally be the canonical identity DD *)
  let ctx = fresh_ctx () in
  List.iter
    (fun gate ->
      let u = gate_dd ctx ~n:3 gate in
      let udg = Dd.Mdd.adjoint ctx u in
      check_bool
        ("U+U = I for " ^ Gate.name gate)
        true
        (Dd.Mdd.equal (Dd.Mdd.identity ctx 3) (Dd.Mdd.mul ctx udg u)))
    [ Gate.h 1; Gate.t_gate 0; Gate.cx 2 0; Gate.rx 0.3 2; Gate.sy 1 ]

let test_apply_matches_dense () =
  let ctx = fresh_ctx () in
  let v = [| c 0.5 0.; c 0.5 0.; c 0.5 0.; c 0. 0.5 |] in
  let gate = Gate.cx 0 1 in
  let result =
    Dd.Mdd.apply ctx (gate_dd ctx ~n:2 gate) (Dd.Vdd.of_array ctx v)
  in
  check_cnum_array "matrix-vector multiplication"
    (dense_matvec (dense_gate ~n:2 gate) v)
    (Dd.Vdd.to_array result ~n:2)

let test_apply_zero () =
  let ctx = fresh_ctx () in
  let u = gate_dd ctx ~n:2 (Gate.h 0) in
  check_bool "U x 0 = 0" true
    (Dd.Types.v_is_zero (Dd.Mdd.apply ctx u Dd.Vdd.zero))

let test_adjoint_matches_dense () =
  let ctx = fresh_ctx () in
  let u = gate_dd ctx ~n:2 (Gate.make (Gate.Rx 0.9) 0) in
  let expected =
    let m = dense_gate ~n:2 (Gate.make (Gate.Rx 0.9) 0) in
    Array.init 4 (fun row ->
        Array.init 4 (fun col -> Cnum.conj m.(col).(row)))
  in
  check_dense_matrix "adjoint" expected
    (Dd.Mdd.to_dense (Dd.Mdd.adjoint ctx u) ~n:2)

let test_kron_matches_dense () =
  let ctx = fresh_ctx () in
  let h = Dd.Mdd.gate ctx ~n:1 ~target:0 (Gate.matrix Gate.H) in
  let x = Dd.Mdd.gate ctx ~n:1 ~target:0 (Gate.matrix Gate.X) in
  let expected =
    dense_kron (dense_gate ~n:1 (Gate.h 0)) (dense_gate ~n:1 (Gate.x 0))
  in
  check_dense_matrix "H (x) X" expected
    (Dd.Mdd.to_dense (Dd.Mdd.kron ctx h x) ~n:2)

let test_kron_with_identity_is_gate () =
  let ctx = fresh_ctx () in
  let h1 = Dd.Mdd.gate ctx ~n:1 ~target:0 (Gate.matrix Gate.H) in
  let lifted = Dd.Mdd.kron ctx (Dd.Mdd.identity ctx 2) h1 in
  let direct = Dd.Mdd.gate ctx ~n:3 ~target:0 (Gate.matrix Gate.H) in
  check_bool "I (x) H == H-on-qubit-0 canonically" true
    (Dd.Mdd.equal lifted direct)

let test_control_top () =
  let ctx = fresh_ctx () in
  let x1 = Dd.Mdd.gate ctx ~n:1 ~target:0 (Gate.matrix Gate.X) in
  let cx_via_control_top = Dd.Mdd.control_top ctx ~n:1 x1 in
  let cx_direct = gate_dd ctx ~n:2 (Gate.cx 1 0) in
  check_bool "control_top builds CX" true
    (Dd.Mdd.equal cx_via_control_top cx_direct)

let test_add_matrices () =
  let ctx = fresh_ctx () in
  let x = gate_dd ctx ~n:1 (Gate.x 0) in
  let z = gate_dd ctx ~n:1 (Gate.z 0) in
  let sum = Dd.Mdd.add ctx x z in
  let expected =
    [| [| r 1.; r 1. |]; [| r 1.; r (-1.) |] |]
  in
  check_dense_matrix "X + Z" expected (Dd.Mdd.to_dense sum ~n:1)

let test_entry () =
  let ctx = fresh_ctx () in
  let dd = gate_dd ctx ~n:3 (Gate.ccx 0 1 2) in
  check_cnum "flip entry" Cnum.one (Dd.Mdd.entry dd ~n:3 ~row:7 ~col:3);
  check_cnum "identity entry" Cnum.one (Dd.Mdd.entry dd ~n:3 ~row:2 ~col:2);
  check_cnum "off entry" Cnum.zero (Dd.Mdd.entry dd ~n:3 ~row:0 ~col:1)

let suite =
  [
    Alcotest.test_case "identity" `Quick test_identity;
    Alcotest.test_case "identity_linear_size" `Quick
      test_identity_linear_size;
    Alcotest.test_case "single_qubit_targets" `Quick
      test_single_qubit_gate_each_target;
    Alcotest.test_case "gate_kinds_dense" `Quick test_gate_kinds_dense;
    Alcotest.test_case "cx_both_orientations" `Quick
      test_cx_both_orientations;
    Alcotest.test_case "cx_paper_matrix" `Quick test_cx_matches_paper_matrix;
    Alcotest.test_case "negative_control" `Quick test_negative_control;
    Alcotest.test_case "toffoli" `Quick test_toffoli;
    Alcotest.test_case "mcz_mixed_polarity" `Quick test_mcz_mixed_polarity;
    Alcotest.test_case "gate_rejects_bad_input" `Quick
      test_gate_rejects_bad_input;
    Alcotest.test_case "gate_size_linear" `Quick test_gate_size_linear;
    Alcotest.test_case "of_dense_roundtrip" `Quick test_of_dense_roundtrip;
    Alcotest.test_case "permutation" `Quick test_permutation;
    Alcotest.test_case "permutation_not_bijection" `Quick
      test_permutation_rejects_non_bijection;
    Alcotest.test_case "mul_matches_dense" `Quick test_mul_matches_dense;
    Alcotest.test_case "mul_with_identity" `Quick test_mul_with_identity;
    Alcotest.test_case "unitarity_canonical" `Quick test_unitarity_canonical;
    Alcotest.test_case "apply_matches_dense" `Quick test_apply_matches_dense;
    Alcotest.test_case "apply_zero" `Quick test_apply_zero;
    Alcotest.test_case "adjoint_matches_dense" `Quick
      test_adjoint_matches_dense;
    Alcotest.test_case "kron_matches_dense" `Quick test_kron_matches_dense;
    Alcotest.test_case "kron_identity_is_gate" `Quick
      test_kron_with_identity_is_gate;
    Alcotest.test_case "control_top" `Quick test_control_top;
    Alcotest.test_case "add_matrices" `Quick test_add_matrices;
    Alcotest.test_case "entry" `Quick test_entry;
  ]

let test_of_diagonal () =
  let ctx = fresh_ctx () in
  let f i = Cnum.of_polar 1. (0.3 *. float_of_int i) in
  let dd = Dd.Mdd.of_diagonal ctx ~n:3 f in
  let dense = Dd.Mdd.to_dense dd ~n:3 in
  for row = 0 to 7 do
    for col = 0 to 7 do
      check_cnum
        (Printf.sprintf "diag entry %d %d" row col)
        (if row = col then f row else Cnum.zero)
        dense.(row).(col)
    done
  done

let test_of_diagonal_shares () =
  let ctx = fresh_ctx () in
  (* a constant diagonal is the (scaled) identity: maximal sharing *)
  let dd = Dd.Mdd.of_diagonal ctx ~n:10 (fun _ -> Cnum.make 0. 1.) in
  check_int "constant diagonal is a chain" 10 (Dd.Mdd.node_count dd);
  check_bool "equals i * identity" true
    (Dd.Mdd.equal dd
       (Dd.Mdd.scale ctx (Cnum.make 0. 1.) (Dd.Mdd.identity ctx 10)))

let suite =
  suite
  @ [
      Alcotest.test_case "of_diagonal" `Quick test_of_diagonal;
      Alcotest.test_case "of_diagonal_shares" `Quick test_of_diagonal_shares;
    ]
