(* Compute-table invariants: lossy collisions are misses (never wrong
   values), counter bookkeeping, eviction accounting, sweep semantics. *)

open Util

let make ?(bits = 4) () =
  Dd.Compute_table.create ~name:"test" ~bits ~dummy:(-1)

let test_find_after_store () =
  let t = make () in
  Dd.Compute_table.store t ~k1:1 ~k2:2 ~k3:3 42;
  check_bool "stored key found" true
    (Dd.Compute_table.find t ~k1:1 ~k2:2 ~k3:3 = Some 42);
  check_bool "other key absent" true
    (Dd.Compute_table.find t ~k1:9 ~k2:2 ~k3:3 = None)

(* A 2^1-slot table forces every pair of distinct keys to collide at
   some point; a lookup must never return a value stored under a
   different key. *)
let test_collisions_never_lie () =
  let t = make ~bits:1 () in
  let stored = Hashtbl.create 64 in
  let rng = Random.State.make [| 0xC0111 |] in
  for i = 0 to 499 do
    let k1 = Random.State.int rng 8
    and k2 = Random.State.int rng 8
    and k3 = Random.State.int rng 4 in
    if i land 1 = 0 then begin
      Dd.Compute_table.store t ~k1 ~k2 ~k3 i;
      Hashtbl.replace stored (k1, k2, k3) i
    end
    else
      match Dd.Compute_table.find t ~k1 ~k2 ~k3 with
      | None -> ()
      | Some v ->
        (* an occupied slot answers only for the full key it holds, so a
           hit must return the value most recently stored under exactly
           this key *)
        check_int
          (Printf.sprintf "lookup (%d,%d,%d) returns that key's value" k1
             k2 k3)
          (Hashtbl.find stored (k1, k2, k3))
          v
  done

let test_hits_plus_misses () =
  let t = make ~bits:2 () in
  let rng = Random.State.make [| 77 |] in
  for i = 0 to 299 do
    let k1 = Random.State.int rng 6 and k2 = Random.State.int rng 6 in
    if i mod 3 = 0 then Dd.Compute_table.store t ~k1 ~k2 ~k3:0 i
    else ignore (Dd.Compute_table.find t ~k1 ~k2 ~k3:0)
  done;
  let s = Dd.Compute_table.stats t in
  check_int "hits + misses = lookups" s.Dd.Compute_table.lookups
    (s.Dd.Compute_table.hits + s.Dd.Compute_table.misses)

let test_eviction_counting () =
  let t = make ~bits:1 () in
  let evictions () =
    (Dd.Compute_table.stats t).Dd.Compute_table.evictions
  in
  Dd.Compute_table.store t ~k1:1 ~k2:0 ~k3:0 10;
  check_int "first store evicts nothing" 0 (evictions ());
  Dd.Compute_table.store t ~k1:1 ~k2:0 ~k3:0 11;
  check_int "overwriting the same key is not an eviction" 0 (evictions ());
  (* find the key that collides with (1,0,0) by brute force: in a
     2-slot table at least one of these shares its slot *)
  let _collider =
    let rec search k =
      Dd.Compute_table.store t ~k1:1 ~k2:0 ~k3:0 11;
      Dd.Compute_table.store t ~k1:k ~k2:0 ~k3:0 99;
      if Dd.Compute_table.find t ~k1:1 ~k2:0 ~k3:0 = None then k
      else search (k + 1)
    in
    search 2
  in
  (* the slot now holds the collider; one colliding store = one eviction *)
  let before = evictions () in
  Dd.Compute_table.store t ~k1:1 ~k2:0 ~k3:0 12;
  check_int "a colliding store counts exactly one eviction" (before + 1)
    (evictions ())

let test_clear_drops_entries_keeps_counters () =
  let t = make () in
  Dd.Compute_table.store t ~k1:1 ~k2:1 ~k3:1 5;
  ignore (Dd.Compute_table.find t ~k1:1 ~k2:1 ~k3:1);
  Dd.Compute_table.clear t;
  check_int "no entries after clear" 0 (Dd.Compute_table.length t);
  check_bool "entry gone" true
    (Dd.Compute_table.find t ~k1:1 ~k2:1 ~k3:1 = None);
  let s = Dd.Compute_table.stats t in
  check_bool "lookup counter survives clear" true
    (s.Dd.Compute_table.lookups >= 1)

let test_sweep_keeps_and_drops () =
  let t = make ~bits:8 () in
  for k = 0 to 9 do
    Dd.Compute_table.store t ~k1:k ~k2:0 ~k3:0 (k * k)
  done;
  (* colliding stores may have evicted some keys; take stock of what is
     actually resident before sweeping *)
  let resident parity =
    List.filter
      (fun k -> Dd.Compute_table.find t ~k1:k ~k2:0 ~k3:0 <> None)
      (List.filter (fun k -> k mod 2 = parity) [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ])
  in
  let even_in = resident 0 and odd_in = resident 1 in
  let before_gen = Dd.Compute_table.generation t in
  let dropped =
    Dd.Compute_table.sweep t ~keep:(fun k1 _ _ _ -> k1 mod 2 = 0)
  in
  check_int "generation bumped" (before_gen + 1)
    (Dd.Compute_table.generation t);
  check_int "exactly the resident odd keys dropped" (List.length odd_in)
    dropped;
  List.iter
    (fun k ->
      check_bool
        (Printf.sprintf "even key %d survives" k)
        true
        (Dd.Compute_table.find t ~k1:k ~k2:0 ~k3:0 = Some (k * k)))
    even_in;
  List.iter
    (fun k ->
      check_bool
        (Printf.sprintf "odd key %d dropped" k)
        true
        (Dd.Compute_table.find t ~k1:k ~k2:0 ~k3:0 = None))
    odd_in;
  check_int "invalidated counter" (List.length odd_in)
    (Dd.Compute_table.stats t).Dd.Compute_table.invalidated

let test_create_rejects_bad_bits () =
  check_bool "bits 0 rejected" true
    (try
       ignore (Dd.Compute_table.create ~name:"bad" ~bits:0 ~dummy:0);
       false
     with Invalid_argument _ -> true);
  check_bool "bits 29 rejected" true
    (try
       ignore (Dd.Compute_table.create ~name:"bad" ~bits:29 ~dummy:0);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "find_after_store" `Quick test_find_after_store;
    Alcotest.test_case "collisions_never_lie" `Quick
      test_collisions_never_lie;
    Alcotest.test_case "hits_plus_misses" `Quick test_hits_plus_misses;
    Alcotest.test_case "eviction_counting" `Quick test_eviction_counting;
    Alcotest.test_case "clear_semantics" `Quick
      test_clear_drops_entries_keeps_counters;
    Alcotest.test_case "sweep" `Quick test_sweep_keeps_and_drops;
    Alcotest.test_case "create_bounds" `Quick test_create_rejects_bad_bits;
  ]
