(* Crash-safe artifact I/O: the Safe_io checksum/trailer layer, checkpoint
   format-version compatibility and rotation, and the [ddsim fsck] library
   verdicts on healthy and corrupted artifacts. *)

open Util

let run_engine circuit =
  let engine = Dd_sim.Engine.create Circuit.(circuit.qubits) in
  Dd_sim.Engine.run engine circuit;
  engine

let checkpoint_text () =
  let engine = run_engine (Standard.random_circuit ~seed:41 ~qubits:4 ~gates:25 ()) in
  Dd_sim.Checkpoint.to_string
    (Dd_sim.Checkpoint.snapshot engine ~strategy:Dd_sim.Strategy.Sequential
       ~gate_index:25)

let temp_path suffix = Filename.temp_file "ddsim_fsck" suffix

let cleanup path =
  if Sys.file_exists path then Sys.remove path;
  if Sys.file_exists (path ^ ".prev") then Sys.remove (path ^ ".prev")

let invalid_checkpoint_rejects text =
  match Dd_sim.Checkpoint.of_string (fresh_ctx ()) ~source:"test" text with
  | _ -> false
  | exception Dd_sim.Error.Error (Dd_sim.Error.Invalid_checkpoint _) -> true

(* -- Safe_io ------------------------------------------------------------- *)

let test_checksum_values () =
  (* FNV-1a 64 offset basis: the hash of the empty string *)
  Alcotest.(check string) "empty string" "cbf29ce484222325"
    (Obs.Safe_io.checksum "");
  Alcotest.(check string)
    "deterministic"
    (Obs.Safe_io.checksum "ddsim")
    (Obs.Safe_io.checksum "ddsim");
  check_bool "different input, different hash" true
    (Obs.Safe_io.checksum "ddsim" <> Obs.Safe_io.checksum "ddsin");
  check_int "16 hex digits" 16 (String.length (Obs.Safe_io.checksum "x"))

let test_jsonl_trailer_roundtrip () =
  let body = "{\"schema\":\"x\"}\n{\"a\":1}\n" in
  let text = body ^ Obs.Safe_io.jsonl_trailer body in
  let split_body, trailer = Obs.Safe_io.split_jsonl_trailer text in
  Alcotest.(check string) "body preserved byte-for-byte" body split_body;
  check_bool "trailer recovered and verifies" true
    (trailer = Some (Obs.Safe_io.checksum body))

let test_jsonl_trailer_absent () =
  let text = "{\"schema\":\"x\"}\n{\"a\":1}\n" in
  let body, trailer = Obs.Safe_io.split_jsonl_trailer text in
  Alcotest.(check string) "text unchanged" text body;
  check_bool "no trailer" true (trailer = None)

let test_text_trailer_roundtrip () =
  let body = "ddsim-checkpoint 5\nqubits 2\n" in
  let text = body ^ "checksum " ^ Obs.Safe_io.checksum body ^ "\n" in
  let split_body, trailer = Obs.Safe_io.split_text_trailer text in
  Alcotest.(check string) "body preserved" body split_body;
  check_bool "trailer recovered" true
    (trailer = Some (Obs.Safe_io.checksum body))

let test_write_file_atomic () =
  let path = temp_path ".txt" in
  Obs.Safe_io.write_file path "first\n";
  Obs.Safe_io.write_file path "second\n";
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "replacement is complete" "second\n" contents;
  check_bool "no temp sibling left behind" false
    (Sys.file_exists (path ^ ".tmp"));
  cleanup path

(* -- checkpoint format versions ------------------------------------------ *)

(* Rewrite a current (v7) checkpoint as an older on-disk version: patch the
   header, truncate the stats line to the fields that version carried, drop
   the order line and the checksum trailer older writers never produced. *)
let downgrade text ~version ~stats_fields =
  let body, _ = Obs.Safe_io.split_text_trailer text in
  String.split_on_char '\n' body
  |> List.filter (fun line ->
         not (String.length line > 6 && String.sub line 0 6 = "order "))
  |> List.map (fun line ->
         if line = "ddsim-checkpoint 7" then
           Printf.sprintf "ddsim-checkpoint %d" version
         else if
           String.length line > 6 && String.sub line 0 6 = "stats "
         then
           String.split_on_char ' ' line
           |> List.filteri (fun i _ -> i <= stats_fields)
           |> String.concat " "
         else line)
  |> String.concat "\n"

let restores_with_zeroed_counters ~version ~stats_fields () =
  let old = downgrade (checkpoint_text ()) ~version ~stats_fields in
  let cp = Dd_sim.Checkpoint.of_string (fresh_ctx ()) ~source:"old" old in
  check_int "gate index survives" 25 cp.Dd_sim.Checkpoint.gate_index;
  check_int "qubits survive" 4 cp.Dd_sim.Checkpoint.qubits;
  let stats = cp.Dd_sim.Checkpoint.stats in
  check_bool "pre-auditor file: auditor counters zero-filled" true
    (stats.Dd_sim.Sim_stats.audits_run = 0
    && stats.Dd_sim.Sim_stats.audit_violations = 0
    && stats.Dd_sim.Sim_stats.audit_repairs = 0);
  if version < 3 then
    check_int "pre-v3 file: fast-path counter zero-filled" 0
      stats.Dd_sim.Sim_stats.fast_path_applies;
  check_bool "counters that existed restore" true
    (stats.Dd_sim.Sim_stats.gates_seen > 0)

let test_reads_v2 = restores_with_zeroed_counters ~version:2 ~stats_fields:12
let test_reads_v3 = restores_with_zeroed_counters ~version:3 ~stats_fields:14
let test_reads_v4 = restores_with_zeroed_counters ~version:4 ~stats_fields:16

let test_rejects_truncation () =
  let text = checkpoint_text () in
  check_bool "half a file is a structured error" true
    (invalid_checkpoint_rejects
       (String.sub text 0 (String.length text / 2)));
  check_bool "empty file is a structured error" true
    (invalid_checkpoint_rejects "")

let test_rejects_checksum_mismatch () =
  let text = checkpoint_text () in
  let bytes = Bytes.of_string text in
  (* flip one byte in the DD payload, leaving the trailer intact *)
  let i = Bytes.length bytes / 2 in
  Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor 1));
  check_bool "bit rot is a structured error" true
    (invalid_checkpoint_rejects (Bytes.to_string bytes))

let test_rejects_missing_trailer () =
  let body, _ = Obs.Safe_io.split_text_trailer (checkpoint_text ()) in
  check_bool "v5 without its trailer is a structured error" true
    (invalid_checkpoint_rejects body)

(* -- rotation and generation fallback ------------------------------------ *)

let saved_engine () =
  run_engine (Standard.random_circuit ~seed:43 ~qubits:3 ~gates:12 ())

let test_save_rotates_previous () =
  let path = temp_path ".ckpt" in
  Sys.remove path;
  let engine = saved_engine () in
  Dd_sim.Checkpoint.save engine ~strategy:Dd_sim.Strategy.Sequential
    ~gate_index:6 ~path;
  check_bool "first save: no previous generation" false
    (Sys.file_exists (path ^ ".prev"));
  Dd_sim.Checkpoint.save engine ~strategy:Dd_sim.Strategy.Sequential
    ~gate_index:12 ~path;
  check_bool "second save rotated the first" true
    (Sys.file_exists (path ^ ".prev"));
  let current, generation = Dd_sim.Checkpoint.load_latest (fresh_ctx ()) ~path in
  check_bool "latest is current" true
    (generation = Dd_sim.Checkpoint.Current);
  check_int "current carries the newer gate" 12
    current.Dd_sim.Checkpoint.gate_index;
  let previous = Dd_sim.Checkpoint.load (fresh_ctx ()) ~path:(path ^ ".prev") in
  check_int "previous carries the older gate" 6
    previous.Dd_sim.Checkpoint.gate_index;
  cleanup path

let test_load_latest_falls_back () =
  let path = temp_path ".ckpt" in
  Sys.remove path;
  let engine = saved_engine () in
  Dd_sim.Checkpoint.save engine ~strategy:Dd_sim.Strategy.Sequential
    ~gate_index:6 ~path;
  Dd_sim.Checkpoint.save engine ~strategy:Dd_sim.Strategy.Sequential
    ~gate_index:12 ~path;
  (* torch the current generation the way a crash mid-sector would *)
  let oc = open_out_bin path in
  output_string oc "ddsim-checkpoint 5\ngarbage";
  close_out oc;
  let cp, generation = Dd_sim.Checkpoint.load_latest (fresh_ctx ()) ~path in
  check_bool "fell back to the previous generation" true
    (generation = Dd_sim.Checkpoint.Previous);
  check_int "previous generation restored" 6 cp.Dd_sim.Checkpoint.gate_index;
  (* both generations bad: the *original* (current) error surfaces *)
  let oc = open_out_bin (path ^ ".prev") in
  output_string oc "also garbage";
  close_out oc;
  check_bool "both bad: structured error, no fallback" true
    (try
       ignore (Dd_sim.Checkpoint.load_latest (fresh_ctx ()) ~path);
       false
     with Dd_sim.Error.Error (Dd_sim.Error.Invalid_checkpoint _) -> true);
  cleanup path

(* -- fsck ---------------------------------------------------------------- *)

let fsck path = Dd_sim.Fsck.check_file ~path

let test_fsck_good_checkpoint () =
  let path = temp_path ".ckpt" in
  Obs.Safe_io.write_file path (checkpoint_text ());
  let report = fsck path in
  check_bool ("healthy checkpoint: " ^ Dd_sim.Fsck.to_string report) true
    report.Dd_sim.Fsck.ok;
  Alcotest.(check string) "family" "checkpoint" report.Dd_sim.Fsck.family;
  cleanup path

let trace_text () =
  let trace = Obs.Trace.create () in
  let engine = Dd_sim.Engine.create 3 in
  Dd_sim.Engine.set_trace engine trace;
  Dd_sim.Engine.run engine
    (Standard.random_circuit ~seed:47 ~qubits:3 ~gates:10 ());
  Obs.Trace_export.jsonl trace

let test_fsck_good_trace () =
  let path = temp_path ".trace.jsonl" in
  Obs.Safe_io.write_file path (trace_text ());
  let report = fsck path in
  check_bool ("healthy trace: " ^ Dd_sim.Fsck.to_string report) true
    report.Dd_sim.Fsck.ok;
  Alcotest.(check string) "family" "trace" report.Dd_sim.Fsck.family;
  cleanup path

let test_fsck_good_profile () =
  let sink = Obs.Dd_profile.create ~every:1 () in
  let engine = Dd_sim.Engine.create 3 in
  Dd_sim.Engine.set_profile engine sink;
  Dd_sim.Engine.run engine
    (Standard.random_circuit ~seed:53 ~qubits:3 ~gates:10 ());
  let path = temp_path ".profile.jsonl" in
  Obs.Safe_io.write_file path (Obs.Dd_profile.jsonl sink);
  let report = fsck path in
  check_bool ("healthy profile: " ^ Dd_sim.Fsck.to_string report) true
    report.Dd_sim.Fsck.ok;
  Alcotest.(check string) "family" "profile" report.Dd_sim.Fsck.family;
  cleanup path

let test_fsck_flags_truncated_trace () =
  let text = trace_text () in
  let path = temp_path ".trace.jsonl" in
  Obs.Safe_io.write_file path (String.sub text 0 (String.length text / 2));
  let report = fsck path in
  check_bool "truncated trace flagged" false report.Dd_sim.Fsck.ok;
  cleanup path

let test_fsck_flags_reordered_trace () =
  (* keep the header, reverse the events, drop the (now wrong) trailer:
     every line still parses, but gate indices run backwards *)
  let body, _ = Obs.Safe_io.split_jsonl_trailer (trace_text ()) in
  let lines =
    String.split_on_char '\n' body |> List.filter (fun l -> l <> "")
  in
  let header, events =
    match lines with h :: t -> (h, t) | [] -> assert false
  in
  let text =
    String.concat "\n" (header :: List.rev events) ^ "\n"
  in
  let path = temp_path ".trace.jsonl" in
  Obs.Safe_io.write_file path text;
  let report = fsck path in
  check_bool "backwards gate indices flagged" false report.Dd_sim.Fsck.ok;
  cleanup path

let test_fsck_flags_garbage () =
  let path = temp_path ".bin" in
  Obs.Safe_io.write_file path "PK\x03\x04 definitely not ours\n";
  let report = fsck path in
  check_bool "unknown format flagged" false report.Dd_sim.Fsck.ok;
  Alcotest.(check string) "family unknown" "unknown" report.Dd_sim.Fsck.family;
  cleanup path

let test_fsck_missing_file () =
  let report = fsck "/nonexistent/ddsim.ckpt" in
  check_bool "missing file flagged, not raised" false report.Dd_sim.Fsck.ok

let suite =
  [
    Alcotest.test_case "checksum: FNV-1a values" `Quick test_checksum_values;
    Alcotest.test_case "jsonl trailer roundtrip" `Quick
      test_jsonl_trailer_roundtrip;
    Alcotest.test_case "jsonl trailer absent" `Quick test_jsonl_trailer_absent;
    Alcotest.test_case "text trailer roundtrip" `Quick
      test_text_trailer_roundtrip;
    Alcotest.test_case "write_file replaces atomically" `Quick
      test_write_file_atomic;
    Alcotest.test_case "reads version 2 checkpoints" `Quick test_reads_v2;
    Alcotest.test_case "reads version 3 checkpoints" `Quick test_reads_v3;
    Alcotest.test_case "reads version 4 checkpoints" `Quick test_reads_v4;
    Alcotest.test_case "rejects truncated checkpoints" `Quick
      test_rejects_truncation;
    Alcotest.test_case "rejects checksum mismatch" `Quick
      test_rejects_checksum_mismatch;
    Alcotest.test_case "rejects v5 without trailer" `Quick
      test_rejects_missing_trailer;
    Alcotest.test_case "save rotates the previous generation" `Quick
      test_save_rotates_previous;
    Alcotest.test_case "load_latest falls back, re-raises original" `Quick
      test_load_latest_falls_back;
    Alcotest.test_case "fsck: healthy checkpoint" `Quick
      test_fsck_good_checkpoint;
    Alcotest.test_case "fsck: healthy trace" `Quick test_fsck_good_trace;
    Alcotest.test_case "fsck: healthy profile" `Quick test_fsck_good_profile;
    Alcotest.test_case "fsck: truncated trace" `Quick
      test_fsck_flags_truncated_trace;
    Alcotest.test_case "fsck: reordered trace" `Quick
      test_fsck_flags_reordered_trace;
    Alcotest.test_case "fsck: unrecognised file" `Quick test_fsck_flags_garbage;
    Alcotest.test_case "fsck: missing file" `Quick test_fsck_missing_file;
  ]
