(* The fault matrix: every injection point in lib/fault is armed in turn
   and the test proves the runtime either *detects* the corruption (the
   auditor or the checksum layer names it) or *recovers* bitwise-correctly
   (forced GC, checkpoint restore after allocation failure).

   Every test disarms in a [Fun.protect] finally so a failing assertion
   cannot leak an armed plan into the rest of the suite. *)

open Util

let with_fault ?seed plan body =
  Fault.arm ?seed plan;
  Fun.protect ~finally:Fault.disarm body

let run_engine circuit =
  let engine = Dd_sim.Engine.create Circuit.(circuit.qubits) in
  Dd_sim.Engine.run engine circuit;
  engine

(* detection = the audit names violations, or escalates past the ladder *)
let detected_by_audit engine =
  match Dd_sim.Engine.audit_now engine with
  | found -> found > 0
  | exception Dd_sim.Error.Error (Dd_sim.Error.Audit_failure _) -> true

let temp_path suffix =
  let path = Filename.temp_file "ddsim_fault" suffix in
  path

(* -- trigger semantics --------------------------------------------------- *)

let test_disarmed_is_inert () =
  check_bool "not armed" false (Fault.armed ());
  check_bool "probe is false" false (Fault.fire Fault.Weight_flip);
  check_int "nothing fired" 0 (Fault.fired_count Fault.Weight_flip)

let test_after_fires_exactly_once () =
  with_fault [ (Fault.Weight_flip, Fault.After 3) ] (fun () ->
      let fires =
        List.init 6 (fun _ -> Fault.fire Fault.Weight_flip)
      in
      check_bool "fires on the third probe only" true
        (fires = [ false; false; true; false; false; false ]);
      check_int "counted once" 1 (Fault.fired_count Fault.Weight_flip);
      check_bool "other points untouched" false
        (Fault.fire Fault.Io_garble))

let test_probability_replays_with_seed () =
  let record () =
    with_fault ~seed:9 [ (Fault.Table_poison, Fault.Probability 0.4) ]
      (fun () -> List.init 200 (fun _ -> Fault.fire Fault.Table_poison))
  in
  let a = record () and b = record () in
  check_bool "seeded stream replays identically" true (a = b);
  check_bool "some probes fired" true (List.exists Fun.id a);
  check_bool "some probes held" true (List.exists not a)

let test_flip_float_is_an_involution () =
  let x = 0.7071067811865476 in
  let flipped = Fault.flip_float x in
  check_bool "flip changes the value" true (flipped <> x);
  check_float "flip twice restores" x (Fault.flip_float flipped);
  check_bool "low bit is a small perturbation" true
    (Float.abs (Fault.flip_float ~bit:0 x -. x) < 1e-12)

(* -- weight corruption --------------------------------------------------- *)

let test_weight_flip_detected_and_repaired () =
  let engine = run_engine (Circuit.of_gates ~qubits:1 [ Gate.h 0 ]) in
  with_fault [ (Fault.Weight_flip, Fault.After 1) ] (fun () ->
      Dd_sim.Engine.apply_gate engine (Gate.t_gate 0);
      check_int "the flip actually fired" 1
        (Fault.fired_count Fault.Weight_flip);
      check_bool "audit detects the flipped weight" true
        (detected_by_audit engine));
  (* the fault fired exactly once, so the rebuild re-interns cleanly *)
  check_int "clean after the recovery ladder" 0
    (Dd_sim.Engine.audit_now engine)

let test_persistent_weight_flips_detected_at_cadence () =
  let circuit =
    Circuit.of_gates ~qubits:2
      [ Gate.h 0; Gate.t_gate 0; Gate.cx 0 1; Gate.t_gate 1 ]
  in
  with_fault [ (Fault.Weight_flip, Fault.Always) ] (fun () ->
      let engine = Dd_sim.Engine.create 2 in
      Dd_sim.Engine.set_audit engine 1;
      let detected =
        match Dd_sim.Engine.run engine circuit with
        | () ->
          let stats = Dd_sim.Engine.stats engine in
          stats.Dd_sim.Sim_stats.audit_violations > 0
        | exception Dd_sim.Error.Error (Dd_sim.Error.Audit_failure _) ->
          true
      in
      check_bool "cadenced audit sees persistent corruption" true detected)

(* -- compute-table corruption -------------------------------------------- *)

let test_table_poison_detected () =
  (* X;X;X on one qubit: the third application hits the apply cache entry
     populated by the first, and the poisoned hit returns the dummy *)
  with_fault [ (Fault.Table_poison, Fault.Always) ] (fun () ->
      let engine =
        run_engine
          (Circuit.of_gates ~qubits:1 [ Gate.x 0; Gate.x 0; Gate.x 0 ])
      in
      check_bool "a poisoned hit was served" true
        (Fault.fired_count Fault.Table_poison > 0);
      check_bool "audit detects the poisoned state" true
        (detected_by_audit engine))

let test_skipped_sweep_detected_and_repaired () =
  let engine =
    run_engine (Standard.random_circuit ~seed:21 ~qubits:5 ~gates:60 ())
  in
  with_fault [ (Fault.Table_skip_sweep, Fault.Always) ] (fun () ->
      let v_removed, _ = Dd_sim.Engine.collect_garbage engine in
      check_bool "the collection reclaimed nodes" true (v_removed > 0));
  let ctx = Dd_sim.Engine.context engine in
  let stale = Dd.Audit.check_tables ctx in
  check_bool "stale entries reported" true
    (List.exists
       (fun v -> Dd.Audit.class_of v = Dd.Audit.Table)
       stale);
  let found = Dd_sim.Engine.audit_now engine in
  check_bool "audit_now sees them too" true (found > 0);
  check_int "cache flush repaired the tables" 1
    (Dd_sim.Engine.stats engine).Dd_sim.Sim_stats.audit_repairs;
  check_int "clean after repair" 0 (List.length (Dd.Audit.check_tables ctx))

(* -- unique-table corruption --------------------------------------------- *)

let test_unique_drop_detected_and_rebuilt () =
  let engine =
    run_engine (Standard.random_circuit ~seed:23 ~qubits:4 ~gates:30 ())
  in
  let before = Dd.Vdd.to_array (Dd_sim.Engine.state engine) ~n:4 in
  with_fault [ (Fault.Unique_drop, Fault.Always) ] (fun () ->
      ignore (Dd_sim.Engine.collect_garbage engine);
      check_int "one reachable node was dropped" 1
        (Fault.fired_count Fault.Unique_drop));
  let ctx = Dd_sim.Engine.context engine in
  check_bool "canonicity walk finds the unrepresented node" true
    (List.exists
       (fun v ->
         match v with
         | Dd.Audit.Unrepresented_node _ -> true
         | _ -> false)
       (Dd.Audit.check_vector ctx (Dd_sim.Engine.state engine)
       @ Dd.Audit.check_tables ctx));
  let found = Dd_sim.Engine.audit_now engine in
  check_bool "audit_now detects" true (found > 0);
  check_int "rebuild repaired it" 1
    (Dd_sim.Engine.stats engine).Dd_sim.Sim_stats.audit_repairs;
  let after = Dd.Vdd.to_array (Dd_sim.Engine.state engine) ~n:4 in
  check_bool "state recovered bitwise" true (before = after)

(* -- adversarial GC ------------------------------------------------------ *)

let test_forced_gc_is_harmless () =
  let circuit = Standard.random_circuit ~seed:29 ~qubits:5 ~gates:50 () in
  let clean =
    Dd.Vdd.to_array (Dd_sim.Engine.state (run_engine circuit)) ~n:5
  in
  with_fault [ (Fault.Forced_gc, Fault.Always) ] (fun () ->
      let engine = run_engine circuit in
      check_bool "collections actually ran" true
        (Fault.fired_count Fault.Forced_gc > 0);
      (* a collection sweeps the weight-interning table, so canonical
         representatives — and hence low-order bits — may differ; the
         state must agree to interning tolerance and audit clean *)
      let stressed = Dd.Vdd.to_array (Dd_sim.Engine.state engine) ~n:5 in
      check_cnum_array "state unchanged under per-gate GC" clean stressed;
      check_int "and audits clean" 0 (Dd_sim.Engine.audit_now engine))

(* -- allocation failure + checkpoint restore ----------------------------- *)

let test_alloc_fail_recovered_from_checkpoint () =
  let circuit = Standard.random_circuit ~seed:31 ~qubits:4 ~gates:40 () in
  let gates = Circuit.flatten circuit in
  let expected =
    Dd.Vdd.to_array (Dd_sim.Engine.state (run_engine circuit)) ~n:4
  in
  let path = temp_path ".ckpt" in
  let split = 20 in
  let prefix = List.filteri (fun i _ -> i < split) gates in
  let rest = List.filteri (fun i _ -> i >= split) gates in
  let engine = Dd_sim.Engine.create 4 in
  List.iter (Dd_sim.Engine.apply_gate engine) prefix;
  Dd_sim.Checkpoint.save engine ~strategy:Dd_sim.Strategy.Sequential
    ~gate_index:split ~path;
  let crashed =
    with_fault [ (Fault.Alloc_fail, Fault.After 1) ] (fun () ->
        try
          List.iter (Dd_sim.Engine.apply_gate engine) rest;
          false
        with Out_of_memory -> true)
  in
  check_bool "allocation failure surfaced as Out_of_memory" true crashed;
  (* recovery: fresh context, restore the checkpoint, replay the tail *)
  let ctx = fresh_ctx () in
  let engine2 = Dd_sim.Engine.create ~context:ctx 4 in
  let cp, generation = Dd_sim.Checkpoint.load_latest ctx ~path in
  check_bool "current generation restored" true
    (generation = Dd_sim.Checkpoint.Current);
  let start = Dd_sim.Checkpoint.restore engine2 cp in
  check_int "resumes at the checkpoint gate" split start;
  List.iter (Dd_sim.Engine.apply_gate engine2) rest;
  let recovered = Dd.Vdd.to_array (Dd_sim.Engine.state engine2) ~n:4 in
  check_bool "replayed tail matches the clean run bitwise" true
    (expected = recovered);
  Sys.remove path;
  if Sys.file_exists (path ^ ".prev") then Sys.remove (path ^ ".prev")

(* -- artifact I/O corruption --------------------------------------------- *)

let corrupted_checkpoint_io fault =
  let engine = run_engine (Standard.bell ()) in
  let path = temp_path ".ckpt" in
  with_fault [ (fault, Fault.After 1) ] (fun () ->
      Dd_sim.Checkpoint.save engine ~strategy:Dd_sim.Strategy.Sequential
        ~gate_index:2 ~path;
      check_int "the write was corrupted" 1 (Fault.fired_count fault));
  let load_rejects =
    try
      ignore (Dd_sim.Checkpoint.load (fresh_ctx ()) ~path);
      false
    with Dd_sim.Error.Error (Dd_sim.Error.Invalid_checkpoint _) -> true
  in
  check_bool "load rejects with a structured error" true load_rejects;
  let report = Dd_sim.Fsck.check_file ~path in
  check_bool "fsck flags the file" false report.Dd_sim.Fsck.ok;
  check_bool "as a checkpoint" true
    (report.Dd_sim.Fsck.family = "checkpoint");
  Sys.remove path;
  if Sys.file_exists (path ^ ".prev") then Sys.remove (path ^ ".prev")

let test_truncated_write_detected () = corrupted_checkpoint_io Fault.Io_truncate
let test_garbled_write_detected () = corrupted_checkpoint_io Fault.Io_garble

(* -- clock skew ---------------------------------------------------------- *)

let test_clock_stays_monotone_under_skew () =
  with_fault ~seed:3 [ (Fault.Clock_skew, Fault.Probability 0.5) ] (fun () ->
      let last = ref (Obs.Clock.now ()) in
      for _ = 1 to 1000 do
        let t = Obs.Clock.now () in
        check_bool "clock never goes backwards" true (t >= !last);
        last := t
      done;
      check_bool "skew actually fired" true
        (Fault.fired_count Fault.Clock_skew > 0))

let suite =
  [
    Alcotest.test_case "disarmed probes are inert" `Quick
      test_disarmed_is_inert;
    Alcotest.test_case "After n fires exactly once" `Quick
      test_after_fires_exactly_once;
    Alcotest.test_case "Probability replays with its seed" `Quick
      test_probability_replays_with_seed;
    Alcotest.test_case "flip_float is an involution" `Quick
      test_flip_float_is_an_involution;
    Alcotest.test_case "weight flip: detected, then repaired" `Quick
      test_weight_flip_detected_and_repaired;
    Alcotest.test_case "persistent weight flips: detected at cadence" `Quick
      test_persistent_weight_flips_detected_at_cadence;
    Alcotest.test_case "table poison: detected" `Quick
      test_table_poison_detected;
    Alcotest.test_case "skipped sweep: detected, tables repaired" `Quick
      test_skipped_sweep_detected_and_repaired;
    Alcotest.test_case "unique drop: detected, rebuilt bitwise" `Quick
      test_unique_drop_detected_and_rebuilt;
    Alcotest.test_case "forced GC: bitwise harmless" `Quick
      test_forced_gc_is_harmless;
    Alcotest.test_case "alloc failure: recovered from checkpoint" `Quick
      test_alloc_fail_recovered_from_checkpoint;
    Alcotest.test_case "truncated write: detected at rest" `Quick
      test_truncated_write_detected;
    Alcotest.test_case "garbled write: detected at rest" `Quick
      test_garbled_write_detected;
    Alcotest.test_case "clock skew: clamp keeps time monotone" `Quick
      test_clock_stays_monotone_under_skew;
  ]
