(* Strategy cost ledger: per-window attribution, JSONL round-trips,
   explain/fsck integration, and the zero-cost-when-disabled contract. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let temp_path suffix =
  Filename.temp_file "ddsim_ledger_test" suffix

let ledgered_run ?(strategy = Dd_sim.Strategy.Sequential) ?guard ?domains
    circuit =
  let engine = Dd_sim.Engine.create ~seed:7 Circuit.(circuit.qubits) in
  (match domains with
  | None -> ()
  | Some d -> Dd_sim.Engine.set_domains engine d);
  let ledger = Obs.Ledger.create () in
  Dd_sim.Engine.set_ledger engine ledger;
  (match guard with
  | None -> Dd_sim.Engine.run ~strategy engine circuit
  | Some guard -> Dd_sim.Engine.run ~strategy ~guard engine circuit);
  (engine, ledger)

let contains_sub text sub =
  let n = String.length text and m = String.length sub in
  let rec loop i = i + m <= n && (String.sub text i m = sub || loop (i + 1)) in
  loop 0

(* -- null sink and disabled-path contract ------------------------------ *)

let test_null_sink () =
  let t = Obs.Ledger.null in
  check_bool "null sink is off" false (Obs.Ledger.is_on t);
  Obs.Ledger.open_entry t ~seq:true ~gate:0 ~state_nodes:1;
  Obs.Ledger.add_gates t 3;
  Obs.Ledger.add_build t 0.5;
  Obs.Ledger.commit t ~gate_end:3 ~state_nodes:1 ~heap_words:0 ~table_bytes:0;
  check_int "null sink records nothing" 0 (Obs.Ledger.length t);
  check_bool "null sink never has an open entry" false (Obs.Ledger.active t)

let test_disabled_probe_allocates_nothing () =
  let t = Obs.Ledger.null in
  (* pre-bound floats so the loop body itself cannot box arguments *)
  let dt = Sys.opaque_identity 0.001 in
  (* warm-up outside the measured window *)
  Obs.Ledger.add_build t dt;
  Obs.Ledger.add_apply t dt;
  let before = Gc.minor_words () in
  for i = 1 to 100_000 do
    Obs.Ledger.add_gates t 1;
    Obs.Ledger.add_build t dt;
    Obs.Ledger.add_apply t dt;
    Obs.Ledger.add_traffic t ~hits:i ~misses:i;
    Obs.Ledger.note_matrix t i
  done;
  let allocated = Gc.minor_words () -. before in
  check_bool
    (Printf.sprintf "100k disabled probes allocated %.0f words" allocated)
    true (allocated < 256.)

let test_unledgered_run_is_identical () =
  let circuit = Qft.circuit 8 in
  let strategy = Dd_sim.Strategy.K_operations 4 in
  let run ~with_ledger =
    let engine = Dd_sim.Engine.create ~seed:7 Circuit.(circuit.qubits) in
    if with_ledger then
      Dd_sim.Engine.set_ledger engine (Obs.Ledger.create ());
    Dd_sim.Engine.run ~strategy engine circuit;
    engine
  in
  let plain = run ~with_ledger:false in
  let ledgered = run ~with_ledger:true in
  let s_plain = Dd_sim.Engine.stats plain in
  let s_ledgered = Dd_sim.Engine.stats ledgered in
  check_int "same gate count"
    s_plain.Dd_sim.Sim_stats.gates_seen
    s_ledgered.Dd_sim.Sim_stats.gates_seen;
  check_int "same mat-vec multiplications"
    s_plain.Dd_sim.Sim_stats.mat_vec_mults
    s_ledgered.Dd_sim.Sim_stats.mat_vec_mults;
  check_int "same mat-mat multiplications"
    s_plain.Dd_sim.Sim_stats.mat_mat_mults
    s_ledgered.Dd_sim.Sim_stats.mat_mat_mults;
  check_int "same combined applications"
    s_plain.Dd_sim.Sim_stats.combined_applications
    s_ledgered.Dd_sim.Sim_stats.combined_applications;
  check_int "same final state DD"
    (Dd_sim.Engine.state_node_count plain)
    (Dd_sim.Engine.state_node_count ledgered);
  check_int "no ledger entries without a sink" 0
    s_plain.Dd_sim.Sim_stats.ledger_entries;
  check_bool "ledgered run counts its entries" true
    (s_ledgered.Dd_sim.Sim_stats.ledger_entries > 0)

(* -- entry semantics --------------------------------------------------- *)

let entry_ranges entries =
  List.map
    (fun (e : Obs.Ledger.entry) -> (e.gate_start, e.gate_end))
    entries

let check_monotone_ranges entries =
  ignore
    (List.fold_left
       (fun last (start, stop) ->
         check_bool
           (Printf.sprintf "range [%d,%d) does not overlap its predecessor"
              start stop)
           true (start >= last);
         check_bool
           (Printf.sprintf "range [%d,%d) is not inverted" start stop)
           true (stop >= start);
         stop)
       0 (entry_ranges entries))

let test_sequential_run_entries () =
  let circuit = Grover.circuit ~n:6 ~marked:11 () in
  let engine, ledger = ledgered_run circuit in
  let entries = Obs.Ledger.entries ledger in
  check_bool "sequential run committed entries" true (entries <> []);
  List.iter
    (fun (e : Obs.Ledger.entry) ->
      check_bool "every entry is a mat-vec stretch" true
        (e.strategy = Obs.Ledger.Mat_vec))
    entries;
  let gates =
    List.fold_left
      (fun acc (e : Obs.Ledger.entry) -> acc + e.gates)
      0 entries
  in
  check_int "every applied gate is attributed"
    (Dd_sim.Engine.stats engine).Dd_sim.Sim_stats.gates_seen gates;
  check_monotone_ranges entries

let test_k4_attribution_covers_wall_clock () =
  (* the acceptance gate from the issue: on a qft_14 k:4 run the summed
     build+apply seconds cover >= 95% of the engine wall clock *)
  let circuit = Qft.circuit 14 in
  let engine, ledger =
    ledgered_run ~strategy:(Dd_sim.Strategy.K_operations 4) circuit
  in
  let entries = Obs.Ledger.entries ledger in
  check_bool "windows were committed" true (entries <> []);
  List.iter
    (fun (e : Obs.Ledger.entry) ->
      check_bool "every entry is a combination window" true
        (match e.strategy with Obs.Ledger.Mat_mat _ -> true | _ -> false))
    entries;
  check_monotone_ranges entries;
  let wall =
    (Dd_sim.Engine.stats engine).Dd_sim.Sim_stats.wall_time_seconds
  in
  let attributed =
    Obs.Ledger.total_build_seconds ledger
    +. Obs.Ledger.total_apply_seconds ledger
  in
  check_bool
    (Printf.sprintf "ledger covers %.1f%% of the wall clock (>= 95%%)"
       (100. *. attributed /. Float.max wall 1e-12))
    true
    (attributed >= 0.95 *. wall);
  check_bool "attribution never exceeds wall (within timer noise)" true
    (attributed <= wall *. 1.05 +. 0.001)

let test_k1_windows () =
  let circuit = Qft.circuit 6 in
  let _, ledger =
    ledgered_run ~strategy:(Dd_sim.Strategy.K_operations 1) circuit
  in
  List.iter
    (fun (e : Obs.Ledger.entry) ->
      check_bool "k=1 window entries carry Mat_mat 1" true
        (e.strategy = Obs.Ledger.Mat_mat 1))
    (Obs.Ledger.entries ledger)

let test_fallback_records_budget () =
  (* a tiny matrix budget degrades windows to sequential application;
     the entry must say so and name the budget *)
  let circuit = Grover.circuit ~n:6 ~marked:11 () in
  let guard = Dd_sim.Guard.make ~max_matrix_nodes:2 () in
  let engine, ledger =
    ledgered_run ~strategy:(Dd_sim.Strategy.K_operations 8) ~guard circuit
  in
  check_bool "the guard actually tripped" true
    ((Dd_sim.Engine.stats engine).Dd_sim.Sim_stats.fallbacks > 0);
  let fallbacks =
    List.filter
      (fun (e : Obs.Ledger.entry) -> e.strategy = Obs.Ledger.Fallback)
      (Obs.Ledger.entries ledger)
  in
  check_bool "fallback windows are ledgered as such" true (fallbacks <> []);
  List.iter
    (fun (e : Obs.Ledger.entry) ->
      check_bool
        (Printf.sprintf "detail %S names the tripped budget" e.detail)
        true
        (contains_sub e.detail "max_matrix_nodes 2"))
    fallbacks

let test_resume_does_not_duplicate_entries () =
  let circuit = Qft.circuit 8 in
  let strategy = Dd_sim.Strategy.K_operations 4 in
  let path = temp_path ".ckpt" in
  (* first run: checkpoint mid-run only (the engine also checkpoints at
     the end of the run, which would leave nothing to resume), keep its
     own ledger *)
  let engine = Dd_sim.Engine.create ~seed:7 Circuit.(circuit.qubits) in
  Dd_sim.Engine.set_ledger engine (Obs.Ledger.create ());
  Dd_sim.Engine.run ~strategy ~checkpoint_every:12
    ~on_checkpoint:(fun ~gate_index ->
      if gate_index < Circuit.gate_count circuit then
        Dd_sim.Checkpoint.save engine ~strategy ~gate_index ~path)
    engine circuit;
  (* resume into a fresh engine with a fresh ledger from the last
     periodic checkpoint; no entry may cover already-replayed gates *)
  let ctx = Dd.Context.create () in
  let engine2 = Dd_sim.Engine.create ~context:ctx Circuit.(circuit.qubits) in
  let loaded, _ = Dd_sim.Checkpoint.load_latest ctx ~path in
  let start = Dd_sim.Checkpoint.restore engine2 loaded in
  let ledger2 = Obs.Ledger.create () in
  Dd_sim.Engine.set_ledger engine2 ledger2;
  Dd_sim.Engine.run ~strategy ~start_gate:start engine2 circuit;
  let entries = Obs.Ledger.entries ledger2 in
  check_bool "resumed run committed entries" true (entries <> []);
  check_monotone_ranges entries;
  List.iter
    (fun (e : Obs.Ledger.entry) ->
      check_bool
        (Printf.sprintf "entry [%d,%d) starts at or after the resume gate %d"
           e.gate_start e.gate_end start)
        true (e.gate_start >= start))
    entries;
  let gates =
    List.fold_left
      (fun acc (e : Obs.Ledger.entry) -> acc + e.gates)
      0 entries
  in
  check_int "the resumed ledger covers exactly the replayed tail"
    (Circuit.gate_count circuit - start)
    gates;
  Sys.remove path;
  if Sys.file_exists (path ^ ".prev") then Sys.remove (path ^ ".prev")

let test_retention_and_rotation () =
  let t = Obs.Ledger.create ~max_entries:2 ~stretch:4 () in
  for i = 0 to 2 do
    Obs.Ledger.open_entry t ~seq:true ~gate:(i * 10) ~state_nodes:1;
    Obs.Ledger.add_gates t 1;
    Obs.Ledger.add_build t 0.25;
    Obs.Ledger.commit t
      ~gate_end:((i * 10) + 1)
      ~state_nodes:1 ~heap_words:0 ~table_bytes:0
  done;
  check_int "retention caps the stored entries" 2 (Obs.Ledger.length t);
  check_int "the overflow is counted" 1 (Obs.Ledger.dropped t);
  check_bool "totals survive retention" true
    (Obs.Ledger.total_build_seconds t >= 0.75);
  Obs.Ledger.open_entry t ~seq:true ~gate:40 ~state_nodes:1;
  Obs.Ledger.add_gates t 3;
  check_bool "under the stretch cap" false (Obs.Ledger.rotate_due t);
  Obs.Ledger.add_gates t 1;
  check_bool "at the stretch cap" true (Obs.Ledger.rotate_due t)

(* -- sidecar, explain, fsck -------------------------------------------- *)

let test_jsonl_roundtrip_and_fsck () =
  let circuit = Qft.circuit 8 in
  let _, ledger =
    ledgered_run ~strategy:(Dd_sim.Strategy.K_operations 4) circuit
  in
  let meta = [ ("algo", "qft"); ("wall_seconds", "0.5") ] in
  let text = Obs.Ledger.jsonl ~meta ledger in
  let run = Obs.Ledger.parse_jsonl text in
  check_int "round-trip preserves the version" Obs.Ledger.version
    run.Obs.Ledger.run_version;
  check_bool "round-trip preserves the meta" true
    (List.assoc "algo" run.Obs.Ledger.run_meta = "qft");
  check_int "round-trip preserves every entry"
    (Obs.Ledger.length ledger)
    (List.length run.Obs.Ledger.run_entries);
  List.iter2
    (fun (a : Obs.Ledger.entry) (b : Obs.Ledger.entry) ->
      check_bool "entry round-trips" true
        (a.strategy = b.strategy && a.gate_start = b.gate_start
        && a.gate_end = b.gate_end && a.gates = b.gates
        && a.peak_matrix_nodes = b.peak_matrix_nodes
        && a.hits = b.hits && a.misses = b.misses))
    (Obs.Ledger.entries ledger)
    run.Obs.Ledger.run_entries;
  let path = temp_path ".jsonl" in
  Obs.Safe_io.write_file path text;
  let report = Dd_sim.Fsck.check_file ~path in
  check_bool "fsck passes a clean ledger" true report.Dd_sim.Fsck.ok;
  check_bool "fsck classifies the family" true
    (report.Dd_sim.Fsck.family = "ledger");
  (* flip one byte inside the body: the checksum trailer must catch it *)
  let corrupted = Bytes.of_string text in
  let mid = Bytes.length corrupted / 2 in
  Bytes.set corrupted mid
    (if Bytes.get corrupted mid = '1' then '2' else '1');
  Obs.Safe_io.write_file path (Bytes.to_string corrupted);
  let report = Dd_sim.Fsck.check_file ~path in
  check_bool "fsck flags a corrupted ledger" false report.Dd_sim.Fsck.ok;
  Sys.remove path

let test_explain_output () =
  let circuit = Qft.circuit 10 in
  let _, ledger =
    ledgered_run ~strategy:(Dd_sim.Strategy.K_operations 4) circuit
  in
  let text =
    Obs.Ledger.jsonl ~meta:[ ("wall_seconds", "0.25") ] ledger
  in
  let rendered = Obs.Ledger.explain (Obs.Ledger.parse_jsonl text) in
  List.iter
    (fun needle ->
      check_bool
        (Printf.sprintf "explain mentions %S" needle)
        true
        (contains_sub rendered needle))
    [
      "strategy totals";
      "mat-vec";
      "mat-mat";
      "amortization per window size";
      "most expensive windows";
      "peak memory";
      "wall clock";
    ]

let test_break_even_prefers_smallest_winning_k () =
  let mk strategy gates build apply : Obs.Ledger.entry =
    {
      index = 0;
      strategy;
      gate_start = 0;
      gate_end = gates;
      gates;
      build_seconds = build;
      apply_seconds = apply;
      peak_matrix_nodes = -1;
      state_nodes_before = 1;
      state_nodes_after = 1;
      hits = 0;
      misses = 0;
      heap_live_words = 0;
      table_bytes = 0;
      detail = "";
    }
  in
  (* mat-vec baseline: 10 gates in 1s -> 0.1 s/gate.  k=2 windows cost
     0.3 s/gate (lose); k=4 windows cost 0.05 s/gate (win). *)
  let entries =
    [
      mk Obs.Ledger.Mat_vec 10 0. 1.0;
      mk (Obs.Ledger.Mat_mat 2) 2 0.5 0.1;
      mk (Obs.Ledger.Mat_mat 4) 4 0.1 0.1;
    ]
  in
  (match Obs.Ledger.break_even entries with
  | Some k -> check_int "break-even lands on the first winning k" 4 k
  | None -> Alcotest.fail "expected a break-even k");
  check_bool "no baseline means no break-even" true
    (Obs.Ledger.break_even
       [ mk (Obs.Ledger.Mat_mat 4) 4 0.1 0.1 ]
    = None)

(* -- telemetry and report satellites ----------------------------------- *)

let test_memory_telemetry_family () =
  let circuit = Qft.circuit 8 in
  let engine = Dd_sim.Engine.create Circuit.(circuit.qubits) in
  Dd_sim.Engine.run engine circuit;
  let snap = Dd_sim.Telemetry.snapshot engine in
  let count name =
    match Obs.Metrics.find snap name with
    | Some (Obs.Metrics.Count v) -> v
    | _ -> Alcotest.fail (Printf.sprintf "metric %s missing" name)
  in
  check_bool "heap gauge is live" true (count "mem.heap_live_words" > 0);
  check_bool "unique-table residency is live" true
    (count "mem.unique_table_bytes" > 0);
  check_bool "residency combines both families" true
    (count "mem.residency_bytes"
     = count "mem.unique_table_bytes" + count "mem.compute_table_bytes");
  check_bool "ident-skip counter is surfaced" true
    (count "table.apply.ident_skips" >= 0)

let test_report_header_only_trace () =
  let rendered =
    Obs.Trace_report.render
      { Obs.Trace_report.version = 2; meta = []; events = []; dropped = 0 }
  in
  check_bool "header-only trace reports cleanly" true
    (contains_sub rendered "no events recorded")

let suite =
  [
    Alcotest.test_case "null_sink" `Quick test_null_sink;
    Alcotest.test_case "disabled_probe_allocates_nothing" `Quick
      test_disabled_probe_allocates_nothing;
    Alcotest.test_case "unledgered_run_is_identical" `Quick
      test_unledgered_run_is_identical;
    Alcotest.test_case "sequential_run_entries" `Quick
      test_sequential_run_entries;
    Alcotest.test_case "k4_attribution_covers_wall_clock" `Quick
      test_k4_attribution_covers_wall_clock;
    Alcotest.test_case "k1_windows" `Quick test_k1_windows;
    Alcotest.test_case "fallback_records_budget" `Quick
      test_fallback_records_budget;
    Alcotest.test_case "resume_does_not_duplicate_entries" `Quick
      test_resume_does_not_duplicate_entries;
    Alcotest.test_case "retention_and_rotation" `Quick
      test_retention_and_rotation;
    Alcotest.test_case "jsonl_roundtrip_and_fsck" `Quick
      test_jsonl_roundtrip_and_fsck;
    Alcotest.test_case "explain_output" `Quick test_explain_output;
    Alcotest.test_case "break_even_prefers_smallest_winning_k" `Quick
      test_break_even_prefers_smallest_winning_k;
    Alcotest.test_case "memory_telemetry_family" `Quick
      test_memory_telemetry_family;
    Alcotest.test_case "report_header_only_trace" `Quick
      test_report_header_only_trace;
  ]
