(* Internals: context statistics, cache behaviour, edge heights,
   pretty-printers. *)

open Util

let test_heights () =
  let ctx = fresh_ctx () in
  check_int "basis height" 5 (Dd.Types.v_height (Dd.Vdd.basis ctx ~n:5 3));
  check_int "zero edge height" 0 (Dd.Types.v_height Dd.Vdd.zero);
  check_int "identity height" 4
    (Dd.Types.m_height (Dd.Mdd.identity ctx 4))

let mul_mv_stats ctx = Dd.Compute_table.stats ctx.Dd.Context.mul_mv

let test_cache_counters_move () =
  (* single-target gates in sequential mode go through the structured-apply
     kernel: the apply table must move and mul_mv must stay untouched *)
  let ctx = fresh_ctx () in
  Dd.Context.reset_stats ctx;
  let engine = Dd_sim.Engine.create ~context:ctx 5 in
  Dd_sim.Engine.run engine (Standard.ghz 5);
  let s = Dd.Compute_table.stats ctx.Dd.Context.apply_v in
  check_bool "apply cache was exercised" true
    (s.Dd.Compute_table.lookups > 0);
  check_int "hits + misses = lookups" s.Dd.Compute_table.lookups
    (s.Dd.Compute_table.hits + s.Dd.Compute_table.misses);
  check_int "fused run never consults mul_mv" 0
    (mul_mv_stats ctx).Dd.Compute_table.lookups;
  check_bool "nodes were created" true (Dd.Context.v_unique_size ctx > 0);
  (* generic A/B run: same circuit through explicit gate DDs *)
  let ctx_g = fresh_ctx () in
  Dd.Context.reset_stats ctx_g;
  let generic = Dd_sim.Engine.create ~context:ctx_g 5 in
  Dd_sim.Engine.set_fused_apply generic false;
  Dd_sim.Engine.run generic (Standard.ghz 5);
  check_bool "generic run exercises mul_mv" true
    ((Dd.Compute_table.stats ctx_g.Dd.Context.mul_mv).Dd.Compute_table.lookups
    > 0)

let test_cache_hits_on_repetition () =
  let ctx = fresh_ctx () in
  let engine = Dd_sim.Engine.create ~context:ctx 4 in
  let gate = Dd_sim.Engine.gate_dd engine (Gate.h 2) in
  let v = Dd_sim.Engine.state engine in
  ignore (Dd.Mdd.apply ctx gate v);
  let before = (mul_mv_stats ctx).Dd.Compute_table.hits in
  ignore (Dd.Mdd.apply ctx gate v);
  let after = (mul_mv_stats ctx).Dd.Compute_table.hits in
  check_bool "repeating a multiplication hits the cache" true (after > before)

let test_clear_caches_forgets () =
  let ctx = fresh_ctx () in
  let engine = Dd_sim.Engine.create ~context:ctx 4 in
  let gate = Dd_sim.Engine.gate_dd engine (Gate.h 2) in
  let v = Dd_sim.Engine.state engine in
  ignore (Dd.Mdd.apply ctx gate v);
  Dd.Context.clear_compute_caches ctx;
  let misses_before = (mul_mv_stats ctx).Dd.Compute_table.misses in
  ignore (Dd.Mdd.apply ctx gate v);
  let misses_after = (mul_mv_stats ctx).Dd.Compute_table.misses in
  check_bool "cleared cache misses again" true (misses_after > misses_before)

let test_pp_stats_renders () =
  let ctx = fresh_ctx () in
  ignore (Dd.Vdd.basis ctx ~n:3 1);
  let text = Format.asprintf "%a" Dd.Context.pp_stats ctx in
  check_bool "mentions node counts" true (String.length text > 20)

let test_sim_stats_copy_independent () =
  let stats = Dd_sim.Sim_stats.create () in
  stats.Dd_sim.Sim_stats.mat_vec_mults <- 7;
  let snapshot = Dd_sim.Sim_stats.copy stats in
  stats.Dd_sim.Sim_stats.mat_vec_mults <- 99;
  check_int "copy is a snapshot" 7 snapshot.Dd_sim.Sim_stats.mat_vec_mults

let test_sim_stats_pp () =
  let stats = Dd_sim.Sim_stats.create () in
  stats.Dd_sim.Sim_stats.mat_mat_mults <- 3;
  let text = Format.asprintf "%a" Dd_sim.Sim_stats.pp stats in
  check_bool "pp mentions mat-mat" true
    (let rec has i =
       i + 7 <= String.length text
       && (String.sub text i 7 = "mat-mat" || has (i + 1))
     in
     has 0)

let test_unique_sizes_monotone () =
  let ctx = fresh_ctx () in
  let a = Dd.Context.v_unique_size ctx in
  ignore (Dd.Vdd.basis ctx ~n:4 7);
  let b = Dd.Context.v_unique_size ctx in
  ignore (Dd.Vdd.basis ctx ~n:4 7);
  let c = Dd.Context.v_unique_size ctx in
  check_bool "creation grows the table" true (b > a);
  check_int "hash-consing keeps it stable" b c

let test_engine_rng_deterministic () =
  let run seed =
    let engine = Dd_sim.Engine.create ~seed 3 in
    Dd_sim.Engine.run engine (Standard.ghz 3);
    Dd_sim.Engine.measure_all engine
  in
  check_int "same seed, same outcome" (run 5) (run 5)

let suite =
  [
    Alcotest.test_case "heights" `Quick test_heights;
    Alcotest.test_case "cache_counters" `Quick test_cache_counters_move;
    Alcotest.test_case "cache_hits" `Quick test_cache_hits_on_repetition;
    Alcotest.test_case "clear_caches" `Quick test_clear_caches_forgets;
    Alcotest.test_case "pp_stats" `Quick test_pp_stats_renders;
    Alcotest.test_case "sim_stats_copy" `Quick
      test_sim_stats_copy_independent;
    Alcotest.test_case "sim_stats_pp" `Quick test_sim_stats_pp;
    Alcotest.test_case "unique_sizes" `Quick test_unique_sizes_monotone;
    Alcotest.test_case "rng_deterministic" `Quick
      test_engine_rng_deterministic;
  ]
