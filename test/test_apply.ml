(* The structured-apply fast path (Dd.Apply) must be *edge-identical* to
   building the explicit n-qubit gate DD and multiplying it in: same
   context, same canonical edge.  Unit tests pin the layout corner cases
   (control above / below the target, negative controls, several
   controls); a QCheck property sweeps random gates over random states. *)

open Util
open Dd_complex

let apply_controls (gate : Gate.t) =
  List.map
    (fun (c : Gate.control) ->
      { Dd.Apply.qubit = c.qubit; positive = c.positive })
    gate.controls

let mdd_controls (gate : Gate.t) =
  List.map
    (fun (c : Gate.control) ->
      { Dd.Mdd.c_qubit = c.qubit; c_positive = c.positive })
    gate.controls

(* both routes in one shared context; canonicity makes equality exact *)
let check_gate msg ctx ~n (gate : Gate.t) state =
  let entries = Gate.matrix gate.kind in
  let dd = Dd.Mdd.gate ctx ~n ~target:gate.target ~controls:(mdd_controls gate) entries in
  let generic = Dd.Mdd.apply ctx dd state in
  let fast =
    Dd.Apply.apply ctx ~n ~target:gate.target
      ~controls:(apply_controls gate) entries state
  in
  check_bool (msg ^ " (exact edge equality)") true
    (Dd.Vdd.equal generic fast);
  fast

let run_gates ctx ~n gates =
  List.fold_left
    (fun state gate -> check_gate (Gate.name gate) ctx ~n gate state)
    (Dd.Vdd.basis ctx ~n 0) gates

let test_single_qubit () =
  let ctx = fresh_ctx () in
  let state = Dd.Vdd.basis ctx ~n:1 0 in
  let result = check_gate "h" ctx ~n:1 (Gate.h 0) state in
  check_float "H|0> low amplitude" 0.5
    (Cnum.mag2 (Dd.Vdd.amplitude result ~n:1 0))

let test_target_in_the_middle () =
  let ctx = fresh_ctx () in
  ignore
    (run_gates ctx ~n:5 [ Gate.h 2; Gate.t_gate 2; Gate.x 0; Gate.h 4; Gate.z 2 ])

let test_control_above_target () =
  let ctx = fresh_ctx () in
  ignore
    (run_gates ctx ~n:4
       [ Gate.h 3; Gate.cx 3 0; Gate.h 1; Gate.cz 3 1 ])

let test_target_above_control () =
  let ctx = fresh_ctx () in
  ignore
    (run_gates ctx ~n:4
       [ Gate.h 0; Gate.cx 0 3; Gate.t_gate 3; Gate.cx 1 2 ])

let test_negative_controls () =
  let ctx = fresh_ctx () in
  let nx target qubit =
    Gate.make ~controls:[ Gate.nctrl qubit ] Gate.X target
  in
  ignore (run_gates ctx ~n:3 [ Gate.h 1; nx 0 1; nx 2 0; Gate.h 0; nx 1 2 ])

let test_many_controls () =
  let ctx = fresh_ctx () in
  let ccx =
    Gate.make ~controls:[ Gate.ctrl 0; Gate.ctrl 3 ] Gate.X 1
  in
  let mixed =
    Gate.make
      ~controls:[ Gate.ctrl 2; Gate.nctrl 0; Gate.ctrl 4 ]
      Gate.H 1
  in
  ignore
    (run_gates ctx ~n:5 [ Gate.h 0; Gate.h 3; ccx; Gate.h 2; Gate.h 4; mixed ])

let test_rotation_gates () =
  let ctx = fresh_ctx () in
  ignore
    (run_gates ctx ~n:3
       [
         Gate.h 0;
         Gate.make (Gate.Rx 0.3) 1;
         Gate.make ~controls:[ Gate.ctrl 0 ] (Gate.Rz 1.1) 2;
         Gate.make (Gate.Phase 0.25) 0;
       ])

(* a pure single-target circuit through the fused engine must never touch
   the matrix-vector path: no gate DDs, no mul_mv traffic *)
let test_fast_path_bypasses_mul_mv () =
  let ctx = fresh_ctx () in
  let engine = Dd_sim.Engine.create ~context:ctx 6 in
  Dd_sim.Engine.run engine
    (Standard.random_circuit ~seed:3 ~qubits:6 ~gates:80 ());
  let stats = Dd_sim.Engine.stats engine in
  check_bool "all gates took the fast path" true
    (stats.Dd_sim.Sim_stats.fast_path_applies = 80
    && stats.Dd_sim.Sim_stats.generic_applies = 0);
  let mul_mv = Dd.Compute_table.stats ctx.Dd.Context.mul_mv in
  check_int "mul_mv never consulted" 0 mul_mv.Dd.Compute_table.lookups

let test_checkpoint_roundtrips_dispatch_counters () =
  let engine = Dd_sim.Engine.create 4 in
  Dd_sim.Engine.run engine
    (Standard.random_circuit ~seed:11 ~qubits:4 ~gates:40 ());
  let stats = Dd_sim.Engine.stats engine in
  check_bool "fast path exercised" true
    (stats.Dd_sim.Sim_stats.fast_path_applies > 0);
  let checkpoint =
    Dd_sim.Checkpoint.snapshot engine ~strategy:Dd_sim.Strategy.Sequential
      ~gate_index:40
  in
  let text = Dd_sim.Checkpoint.to_string checkpoint in
  let ctx = fresh_ctx () in
  let reloaded = Dd_sim.Checkpoint.of_string ctx text in
  check_int "fast_path_applies survives the round-trip"
    stats.Dd_sim.Sim_stats.fast_path_applies
    reloaded.Dd_sim.Checkpoint.stats.Dd_sim.Sim_stats.fast_path_applies;
  check_int "generic_applies survives the round-trip"
    stats.Dd_sim.Sim_stats.generic_applies
    reloaded.Dd_sim.Checkpoint.stats.Dd_sim.Sim_stats.generic_applies

(* -- QCheck: random structured gates on random states ------------------- *)

let gate_arb ~n =
  let open QCheck.Gen in
  let kind =
    oneof
      [
        oneofl [ Gate.X; Gate.Y; Gate.Z; Gate.H; Gate.S; Gate.T; Gate.Sx ];
        map (fun t -> Gate.Rx t) (float_range (-3.) 3.);
        map (fun t -> Gate.Ry t) (float_range (-3.) 3.);
        map (fun t -> Gate.Rz t) (float_range (-3.) 3.);
        map (fun t -> Gate.Phase t) (float_range (-3.) 3.);
      ]
  in
  let gen =
    kind >>= fun kind ->
    int_range 0 (n - 1) >>= fun target ->
    let others =
      List.filter (fun q -> q <> target) (List.init n Fun.id)
    in
    (* each non-target wire is a control with probability 1/3 *)
    let control q =
      int_range 0 2 >>= fun r ->
      if r > 0 then return None
      else bool >>= fun positive -> return (Some { Gate.qubit = q; positive })
    in
    let rec pick = function
      | [] -> return []
      | q :: rest ->
        control q >>= fun c ->
        pick rest >>= fun cs ->
        return (match c with None -> cs | Some c -> c :: cs)
    in
    pick others >>= fun controls -> return (Gate.make ~controls kind target)
  in
  QCheck.make ~print:Gate.name gen

let amplitude_gen =
  QCheck.Gen.(
    map2 (fun re im -> Cnum.make re im) (float_range (-1.) 1.)
      (float_range (-1.) 1.))

let state_arb n =
  QCheck.make
    ~print:(fun v ->
      String.concat "; " (Array.to_list (Array.map Cnum.to_string v)))
    QCheck.Gen.(array_size (return (1 lsl n)) amplitude_gen)

let prop_structured_apply_equals_generic =
  let n = 5 in
  QCheck.Test.make
    ~name:"structured apply = gate DD + Mdd.apply (exact edges)" ~count:200
    (QCheck.pair (gate_arb ~n) (state_arb n))
    (fun (gate, amplitudes) ->
      let ctx = fresh_ctx () in
      let state = Dd.Vdd.of_array ctx amplitudes in
      let entries = Gate.matrix gate.kind in
      let dd =
        Dd.Mdd.gate ctx ~n ~target:gate.target ~controls:(mdd_controls gate)
          entries
      in
      let generic = Dd.Mdd.apply ctx dd state in
      let fast =
        Dd.Apply.apply ctx ~n ~target:gate.target
          ~controls:(apply_controls gate) entries state
      in
      Dd.Vdd.equal generic fast)

let prop_gate_sequences_match =
  (* whole circuits, both routes advancing the same state *)
  QCheck.Test.make ~name:"structured apply tracks circuits gate by gate"
    ~count:40
    (QCheck.make
       ~print:(fun seed -> Printf.sprintf "random_circuit seed %d" seed)
       QCheck.Gen.(0 -- 10000))
    (fun seed ->
      let n = 4 in
      let ctx = fresh_ctx () in
      let gates =
        Circuit.flatten
          (Standard.random_circuit ~seed ~qubits:n ~gates:25 ())
      in
      let state = ref (Dd.Vdd.basis ctx ~n 0) in
      List.for_all
        (fun (gate : Gate.t) ->
          let entries = Gate.matrix gate.kind in
          let dd =
            Dd.Mdd.gate ctx ~n ~target:gate.target
              ~controls:(mdd_controls gate) entries
          in
          let generic = Dd.Mdd.apply ctx dd !state in
          let fast =
            Dd.Apply.apply ctx ~n ~target:gate.target
              ~controls:(apply_controls gate) entries !state
          in
          state := fast;
          Dd.Vdd.equal generic fast)
        gates)

let suite =
  [
    Alcotest.test_case "single_qubit" `Quick test_single_qubit;
    Alcotest.test_case "target_in_the_middle" `Quick
      test_target_in_the_middle;
    Alcotest.test_case "control_above_target" `Quick
      test_control_above_target;
    Alcotest.test_case "target_above_control" `Quick
      test_target_above_control;
    Alcotest.test_case "negative_controls" `Quick test_negative_controls;
    Alcotest.test_case "many_controls" `Quick test_many_controls;
    Alcotest.test_case "rotation_gates" `Quick test_rotation_gates;
    Alcotest.test_case "fast_path_bypasses_mul_mv" `Quick
      test_fast_path_bypasses_mul_mv;
    Alcotest.test_case "checkpoint_dispatch_counters" `Quick
      test_checkpoint_roundtrips_dispatch_counters;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_structured_apply_equals_generic; prop_gate_sequences_match ]
